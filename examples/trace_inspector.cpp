/**
 * @file
 * trace_inspector: a command-line dump tool for Aftermath trace files.
 *
 * Usage: trace_inspector <trace-file> [--states] [--counters] [--tasks]
 *                        [--workers N]
 *
 * Prints the header, topology, per-CPU event inventories and summary
 * statistics of a trace file; with flags, dumps the individual records.
 * Loading uses the two-phase parallel reader — one decode worker per
 * hardware thread by default, --workers N to pin the count (the
 * materialized trace is bit-identical at any setting). Also
 * demonstrates symbol resolution: if a file <trace>.nm exists (nm text
 * output), task type addresses are resolved to function names.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "aftermath.h"

using namespace aftermath;

namespace {

void
printSummary(Session &session, const symbols::SymbolTable &syms)
{
    const trace::Trace &tr = session.trace();
    std::printf("machine: %u cpus, %u NUMA nodes, %.2f GHz\n",
                tr.numCpus(), tr.topology().numNodes(),
                static_cast<double>(tr.cpuFreqHz()) / 1e9);
    std::printf("span: %s\n", humanCycles(tr.span().duration()).c_str());

    std::uint64_t states = 0, samples = 0, discrete = 0, comm = 0;
    for (CpuId c = 0; c < tr.numCpus(); c++) {
        states += tr.cpu(c).states().size();
        for (CounterId id : tr.cpu(c).counterIds())
            samples += tr.cpu(c).counterSamples(id).size();
        discrete += tr.cpu(c).discreteEvents().size();
        comm += tr.cpu(c).commEvents().size();
    }
    std::printf("events: %llu states, %llu counter samples, "
                "%llu discrete, %llu comm\n",
                static_cast<unsigned long long>(states),
                static_cast<unsigned long long>(samples),
                static_cast<unsigned long long>(discrete),
                static_cast<unsigned long long>(comm));
    std::printf("tasks: %zu instances of %zu types\n",
                tr.taskInstances().size(), tr.taskTypes().size());
    std::printf("memory: %zu regions, %zu accesses\n",
                tr.memRegions().size(), tr.memAccesses().size());

    std::printf("\ntask types:\n");
    for (const auto &[id, type] : tr.taskTypes()) {
        const symbols::Symbol *sym = syms.lookup(id);
        std::printf("  0x%llx  %-24s %s\n",
                    static_cast<unsigned long long>(id),
                    type.name.c_str(),
                    sym ? (std::string("[nm: ") + sym->name + "]").c_str()
                        : "");
    }

    std::printf("\nstate breakdown:\n");
    const stats::IntervalStats &s = session.intervalStats();
    for (const auto &[state, time] : s.timeInState) {
        std::printf("  %-18s %6.2f%%\n", tr.stateName(state).c_str(),
                    100.0 * s.stateFraction(state));
    }
}

void
dumpStates(const trace::Trace &tr)
{
    for (CpuId c = 0; c < tr.numCpus(); c++) {
        std::printf("cpu %u:\n", c);
        for (const trace::StateEvent &ev : tr.cpu(c).states()) {
            std::printf("  [%llu, %llu) %s",
                        static_cast<unsigned long long>(
                            ev.interval.start),
                        static_cast<unsigned long long>(ev.interval.end),
                        tr.stateName(ev.state).c_str());
            if (ev.task != kInvalidTaskInstance)
                std::printf(" task %llu",
                            static_cast<unsigned long long>(ev.task));
            std::printf("\n");
        }
    }
}

void
dumpCounters(const trace::Trace &tr)
{
    for (CpuId c = 0; c < tr.numCpus(); c++) {
        for (CounterId id : tr.cpu(c).counterIds()) {
            std::printf("cpu %u counter %s:\n", c,
                        tr.counterName(id).c_str());
            for (const trace::CounterSample &s :
                 tr.cpu(c).counterSamples(id)) {
                std::printf("  %llu: %lld\n",
                            static_cast<unsigned long long>(s.time),
                            static_cast<long long>(s.value));
            }
        }
    }
}

void
dumpTasks(const trace::Trace &tr)
{
    for (const trace::TaskInstance &task : tr.taskInstances()) {
        std::printf("task %llu type 0x%llx cpu %u [%llu, %llu) "
                    "duration %s\n",
                    static_cast<unsigned long long>(task.id),
                    static_cast<unsigned long long>(task.type), task.cpu,
                    static_cast<unsigned long long>(task.interval.start),
                    static_cast<unsigned long long>(task.interval.end),
                    humanCycles(task.duration()).c_str());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: %s <trace-file> [--states] [--counters] "
                     "[--tasks] [--workers N]\n"
                     "(generate one with the quickstart example)\n",
                     argv[0]);
        return 2;
    }

    trace::ReadOptions options;
    options.workers = 0; // One decode worker per hardware thread.
    for (int i = 2; i < argc - 1; i++) {
        if (!std::strcmp(argv[i], "--workers"))
            options.workers =
                static_cast<unsigned>(std::atoi(argv[i + 1]));
    }

    trace::ReadResult result = trace::readTraceFile(argv[1], options);
    if (!result.ok) {
        std::fprintf(stderr, "error: %s\n", result.error.c_str());
        return 1;
    }
    std::printf("%s: %zu bytes, %s encoding\n\n", argv[1],
                result.bytesRead,
                result.encoding == trace::Encoding::Compact ? "compact"
                                                            : "raw");

    // Optional nm sidecar for symbol resolution (paper section VI-C).
    symbols::SymbolTable syms;
    std::ifstream nm_file(std::string(argv[1]) + ".nm");
    if (nm_file)
        syms = symbols::SymbolTable::parseNm(nm_file);

    // The session owns the loaded trace for the rest of the run.
    Session session(std::move(result.trace));
    printSummary(session, syms);
    for (int i = 2; i < argc; i++) {
        if (!std::strcmp(argv[i], "--states"))
            dumpStates(session.trace());
        else if (!std::strcmp(argv[i], "--counters"))
            dumpCounters(session.trace());
        else if (!std::strcmp(argv[i], "--tasks"))
            dumpTasks(session.trace());
    }
    return 0;
}
