/**
 * @file
 * Export of per-task performance data for external analysis, plus the
 * binary encode/decode of the statistics value types.
 *
 * Aftermath exports performance data to files processed by external
 * statistics packages (paper section V); the filter mechanisms apply to
 * the exported data so outliers and auxiliary tasks can be excluded
 * before the analysis.
 *
 * The binary half serializes the statistics results the trace-serving
 * daemon ships over its wire protocol (src/daemon/protocol.h):
 * IntervalStats, Histogram, MinMax, CommMatrix and task-counter rows,
 * on the same ByteWriter/ByteReader varint idioms as the trace format.
 * Every encode/decode pair round-trips exactly — integer sums are
 * varints, doubles travel as IEEE-754 bits — so a result decoded on
 * the client is bit-identical to the server's local computation.
 * Decoders follow the reader's sticky-failure contract: they return
 * false on malformed input (reader failed or a structural bound
 * violated) and the reader's offset() then points at the failure.
 */

#ifndef AFTERMATH_STATS_EXPORT_H
#define AFTERMATH_STATS_EXPORT_H

#include <ostream>
#include <string>
#include <vector>

#include "base/buffer.h"
#include "index/counter_index.h"
#include "metrics/task_attribution.h"
#include "stats/anomaly.h"
#include "stats/comm_matrix.h"
#include "stats/histogram.h"
#include "stats/interval_stats.h"

namespace aftermath {
namespace stats {

/**
 * Write per-task counter increases as tab-separated values.
 *
 * Columns: task id, task type id, cpu, duration (cycles), counter
 * increase, increase per kcycle. One header line precedes the data.
 */
void exportTaskCounterTsv(
    const std::vector<metrics::TaskCounterIncrease> &rows, std::ostream &os);

/** exportTaskCounterTsv() to a file; false (with @p error set) on failure. */
bool exportTaskCounterTsvFile(
    const std::vector<metrics::TaskCounterIncrease> &rows,
    const std::string &path, std::string &error);

// -- Binary wire serialization -------------------------------------------

/** Append @p s: interval, per-state times, task counts. */
void encodeIntervalStats(const IntervalStats &s, ByteWriter &w);

/** Decode into @p out; false on malformed input (offset() points at it). */
bool decodeIntervalStats(ByteReader &r, IntervalStats &out);

/** Append @p h: range edges (IEEE bits), per-bin counts. */
void encodeHistogram(const Histogram &h, ByteWriter &w);

/** Decode into @p out via Histogram::fromBins; false on malformed input. */
bool decodeHistogram(ByteReader &r, Histogram &out);

/** Append @p m: validity flag and signed extrema. */
void encodeMinMax(const index::MinMax &m, ByteWriter &w);

/** Decode into @p out; false on malformed input. */
bool decodeMinMax(ByteReader &r, index::MinMax &out);

/** Append @p rows: count, then one row per task-counter increase. */
void encodeTaskCounterRows(
    const std::vector<metrics::TaskCounterIncrease> &rows, ByteWriter &w);

/** Decode into @p out; false on malformed input. */
bool decodeTaskCounterRows(ByteReader &r,
                           std::vector<metrics::TaskCounterIncrease> &out);

/** Append @p m: node count, then the row-major cells. */
void encodeCommMatrix(const CommMatrix &m, ByteWriter &w);

/** Decode into @p out via CommMatrix::fromCells; false on malformed input. */
bool decodeCommMatrix(ByteReader &r, CommMatrix &out);

/**
 * Append @p anomalies: count, then per finding the kind byte, interval
 * edges (fixed u64), cpu/task/counter varints, severity as IEEE bits
 * and the description string — so a ranked list decoded on the client
 * is byte-identical to the server's local scan when re-encoded.
 */
void encodeAnomalies(const std::vector<Anomaly> &anomalies, ByteWriter &w);

/** Decode into @p out; false on malformed input (bad kind, overrun). */
bool decodeAnomalies(ByteReader &r, std::vector<Anomaly> &out);

} // namespace stats
} // namespace aftermath

#endif // AFTERMATH_STATS_EXPORT_H
