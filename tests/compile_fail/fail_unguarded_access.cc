/**
 * @file
 * Compile-fail case: writing an AM_GUARDED_BY member without holding
 * its mutex must be rejected by -Werror=thread-safety. The harness
 * (tests/compile_fail/CMakeLists.txt) fails the configure if this
 * file compiles.
 */

#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace {

struct Counter
{
    aftermath::base::Mutex mutex;
    int value AM_GUARDED_BY(mutex) = 0;

    void
    bump()
    {
        value++; // No lock held: the analysis must reject this.
    }
};

} // namespace

int
aftermathTsaFailCase()
{
    Counter counter;
    counter.bump();
    return 0;
}
