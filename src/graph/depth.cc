#include "graph/depth.h"

#include <algorithm>
#include <queue>

namespace aftermath {
namespace graph {

DepthAnalysis
computeDepths(const TaskGraph &graph)
{
    DepthAnalysis analysis;
    NodeIndex n = graph.numNodes();
    analysis.depth.assign(n, 0);

    std::vector<std::uint32_t> indegree(n, 0);
    for (NodeIndex v = 0; v < n; v++)
        indegree[v] = static_cast<std::uint32_t>(
            graph.predecessors(v).size());

    std::queue<NodeIndex> ready;
    for (NodeIndex v = 0; v < n; v++) {
        if (indegree[v] == 0)
            ready.push(v);
    }

    NodeIndex processed = 0;
    while (!ready.empty()) {
        NodeIndex v = ready.front();
        ready.pop();
        processed++;
        for (NodeIndex s : graph.successors(v)) {
            analysis.depth[s] = std::max(analysis.depth[s],
                                         analysis.depth[v] + 1);
            if (--indegree[s] == 0)
                ready.push(s);
        }
    }

    if (processed != n)
        return analysis; // Cycle: acyclic stays false.

    analysis.acyclic = true;
    for (NodeIndex v = 0; v < n; v++)
        analysis.maxDepth = std::max(analysis.maxDepth, analysis.depth[v]);
    if (n > 0) {
        analysis.parallelismByDepth.assign(analysis.maxDepth + 1, 0);
        for (NodeIndex v = 0; v < n; v++)
            analysis.parallelismByDepth[analysis.depth[v]]++;
    }
    return analysis;
}

ParallelismPhases
classifyPhases(const std::vector<std::uint64_t> &parallelism_by_depth)
{
    ParallelismPhases phases;
    if (parallelism_by_depth.size() < 4)
        return phases;

    phases.startupParallelism = parallelism_by_depth[0];

    // Phase 2: the minimum over depths after 0, earliest occurrence.
    std::uint32_t drop = 1;
    for (std::uint32_t d = 1; d < parallelism_by_depth.size(); d++) {
        if (parallelism_by_depth[d] < parallelism_by_depth[drop])
            drop = d;
    }
    phases.dropDepth = drop;
    phases.dropParallelism = parallelism_by_depth[drop];

    // Phase 3: the maximum after the drop.
    std::uint32_t peak = drop;
    for (std::uint32_t d = drop; d < parallelism_by_depth.size(); d++) {
        if (parallelism_by_depth[d] > parallelism_by_depth[peak])
            peak = d;
    }
    phases.peakDepth = peak;
    phases.peakParallelism = parallelism_by_depth[peak];

    // The four-phase shape requires startup > drop, peak after drop,
    // peak > drop, and a decline after the peak.
    bool declines = peak + 1 < parallelism_by_depth.size() &&
                    parallelism_by_depth.back() < phases.peakParallelism;
    phases.valid = phases.startupParallelism > phases.dropParallelism &&
                   peak > drop && phases.peakParallelism >
                   phases.dropParallelism && declines;
    return phases;
}

} // namespace graph
} // namespace aftermath
