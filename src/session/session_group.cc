#include "session/session_group.h"

#include <algorithm>
#include <map>
#include <utility>

#include "base/logging.h"
#include "base/string_util.h"
#include "stats/regression.h"

namespace aftermath {
namespace session {

std::size_t
SessionGroup::add(std::string label, Session session)
{
    variants_.push_back({std::move(label), std::move(session)});
    // Aligned variants share one pool and one generation counter, so
    // group-wide warm-up and submitAll overlap instead of parking one
    // worker set per variant.
    variants_.back().session.setQueryEngine(engine_);
    return variants_.size() - 1;
}

SessionGroup::Variant &
SessionGroup::variant(std::size_t i)
{
    AFTERMATH_ASSERT(i < variants_.size(),
                     "variant %zu outside group of %zu", i,
                     variants_.size());
    return variants_[i];
}

Session &
SessionGroup::session(std::size_t i)
{
    return variant(i).session;
}

const Session &
SessionGroup::session(std::size_t i) const
{
    AFTERMATH_ASSERT(i < variants_.size(),
                     "variant %zu outside group of %zu", i,
                     variants_.size());
    return variants_[i].session;
}

const std::string &
SessionGroup::label(std::size_t i) const
{
    AFTERMATH_ASSERT(i < variants_.size(),
                     "variant %zu outside group of %zu", i,
                     variants_.size());
    return variants_[i].label;
}

void
SessionGroup::setFilters(const filter::FilterSet &filters)
{
    for (Variant &v : variants_)
        v.session.setFilters(filters);
}

void
SessionGroup::clearFilters()
{
    for (Variant &v : variants_)
        v.session.clearFilters();
}

void
SessionGroup::setView(const TimeInterval &view)
{
    for (Variant &v : variants_)
        v.session.setView(view);
}

void
SessionGroup::setConcurrency(const Session::Concurrency &concurrency)
{
    for (Variant &v : variants_)
        v.session.setConcurrency(concurrency);
}

std::vector<Session::WarmupStats>
SessionGroup::warmup(const Session::WarmupPolicy &policy)
{
    // Submit everything before waiting on anything: variants warm
    // concurrently on the shared pool instead of in sequence. The
    // caller blocks on the results, so the synchronous form runs at
    // Interactive priority like Session::warmup().
    std::vector<QueryTicket<Session::WarmupStats>> tickets = submitAll(
        WarmupQuery{{std::nullopt, QueryPriority::Interactive}, policy});
    std::vector<Session::WarmupStats> out;
    out.reserve(tickets.size());
    for (QueryTicket<Session::WarmupStats> &ticket : tickets)
        out.push_back(ticket.take());
    return out;
}

compare::IntervalStatsDelta
SessionGroup::intervalStatsDelta(std::size_t a, std::size_t b)
{
    const stats::IntervalStats &stats_a = session(a).intervalStats();
    const stats::IntervalStats &stats_b = session(b).intervalStats();
    return compare::intervalStatsDelta(stats_a, stats_b);
}

compare::PairedHistograms
SessionGroup::pairedHistograms(std::uint32_t num_bins)
{
    std::vector<std::vector<double>> observations;
    observations.reserve(variants_.size());
    for (Variant &v : variants_) {
        std::vector<double> durations;
        const auto &tasks = v.session.tasks();
        durations.reserve(tasks.size());
        for (const trace::TaskInstance *task : tasks)
            durations.push_back(static_cast<double>(task->duration()));
        observations.push_back(std::move(durations));
    }
    return compare::pairedHistograms(observations, num_bins);
}

std::vector<compare::RegressionRow>
SessionGroup::regressionRows(CounterId counter)
{
    std::vector<compare::RegressionRow> rows;
    rows.reserve(variants_.size());
    for (Variant &v : variants_) {
        compare::RegressionRow row;
        row.label = v.label;
        auto increases = v.session.taskCounterIncreases(counter);
        std::vector<double> rates, durations;
        rates.reserve(increases.size());
        durations.reserve(increases.size());
        for (const metrics::TaskCounterIncrease &inc : increases) {
            rates.push_back(inc.ratePerKcycle());
            durations.push_back(static_cast<double>(inc.duration));
        }
        row.tasks = increases.size();
        row.meanDuration = stats::mean(durations);
        row.stddevDuration = stats::stddev(durations);
        row.fit = stats::linearRegression(rates, durations);
        rows.push_back(std::move(row));
    }
    return rows;
}

compare::RegressionReport
SessionGroup::detectRegressions(std::size_t baseline, std::size_t variant,
                                const compare::RegressionOptions &options)
{
    compare::RegressionReport report;
    report.baseline = baseline;
    report.variant = variant;

    // Kick both anomaly scans off first so they overlap on the shared
    // pool while the driving thread computes the stats delta and the
    // per-type means.
    AnomalyScanQuery scan;
    scan.options = options.scan;
    scan.context.priority = QueryPriority::Interactive;
    QueryTicket<std::vector<stats::Anomaly>> scan_a =
        session(baseline).submit(scan);
    QueryTicket<std::vector<stats::Anomaly>> scan_b =
        session(variant).submit(scan);

    report.delta = intervalStatsDelta(baseline, variant);

    // Task-type slowdowns over the filtered task lists: the mean
    // duration of every type present on both sides, compared directly.
    struct TypeAgg
    {
        double sum = 0.0;
        std::size_t n = 0;
    };
    std::map<TaskTypeId, TypeAgg> agg_a, agg_b;
    for (const trace::TaskInstance *task : session(baseline).tasks()) {
        TypeAgg &agg = agg_a[task->type];
        agg.sum += static_cast<double>(task->duration());
        agg.n++;
    }
    for (const trace::TaskInstance *task : session(variant).tasks()) {
        TypeAgg &agg = agg_b[task->type];
        agg.sum += static_cast<double>(task->duration());
        agg.n++;
    }
    const auto &types = session(variant).trace().taskTypes();
    for (const auto &[type, b] : agg_b) {
        auto it = agg_a.find(type);
        if (it == agg_a.end() || it->second.n == 0 || b.n == 0)
            continue; // A type absent on one side has no ratio.
        double mean_a =
            it->second.sum / static_cast<double>(it->second.n);
        double mean_b = b.sum / static_cast<double>(b.n);
        if (mean_a <= 0)
            continue;
        double ratio = mean_b / mean_a;
        if (ratio < options.slowdownRatio)
            continue;
        auto name_it = types.find(type);
        const char *name =
            name_it != types.end() ? name_it->second.name.c_str() : "?";
        compare::RegressionFinding finding;
        finding.kind = compare::RegressionFinding::Kind::TaskTypeSlowdown;
        finding.taskType = type;
        finding.severity = ratio;
        finding.description = strFormat(
            "task type %llu (%s): mean duration %.2fx baseline "
            "(%s -> %s)",
            static_cast<unsigned long long>(type), name, ratio,
            humanCycles(static_cast<TimeStamp>(mean_a)).c_str(),
            humanCycles(static_cast<TimeStamp>(mean_b)).c_str());
        report.findings.push_back(std::move(finding));
    }

    // Variant-side anomalies with no baseline counterpart: an idle
    // phase nothing overlaps, a burst of a pair quiet at that time.
    std::vector<stats::Anomaly> base_anomalies = scan_a.take();
    for (const stats::Anomaly &a : scan_b.take()) {
        bool matched = false;
        compare::RegressionFinding finding;
        switch (a.kind) {
        case stats::AnomalyKind::IdlePhase:
            for (const stats::Anomaly &base : base_anomalies)
                matched |= base.kind == stats::AnomalyKind::IdlePhase &&
                           base.interval.overlaps(a.interval);
            finding.kind = compare::RegressionFinding::Kind::NewIdlePhase;
            break;
        case stats::AnomalyKind::CounterBurst:
            for (const stats::Anomaly &base : base_anomalies)
                matched |=
                    base.kind == stats::AnomalyKind::CounterBurst &&
                    base.cpu == a.cpu && base.counter == a.counter &&
                    base.interval.overlaps(a.interval);
            finding.kind =
                compare::RegressionFinding::Kind::NewCounterBurst;
            break;
        case stats::AnomalyKind::DurationOutlier:
            // Individual outliers don't pair across variants (task ids
            // differ); the per-type means above cover slowdowns.
            matched = true;
            break;
        }
        if (matched)
            continue;
        finding.anomaly = a;
        finding.severity = a.severity;
        finding.description =
            strFormat("variant-only %s", a.description.c_str());
        report.findings.push_back(std::move(finding));
    }

    std::sort(report.findings.begin(), report.findings.end(),
              compare::regressionRankedBefore);
    return report;
}

render::RenderStats
SessionGroup::renderSideBySide(const render::TimelineConfig &config,
                               render::Framebuffer &fb)
{
    AFTERMATH_ASSERT(!variants_.empty(),
                     "side-by-side render of an empty group");
    std::uint32_t band_height = std::max<std::uint32_t>(
        1, fb.height() / static_cast<std::uint32_t>(variants_.size()));
    render::RenderStats total;
    for (std::size_t i = 0; i < variants_.size(); i++) {
        // The last band absorbs the integer-division remainder so the
        // whole target height is covered.
        std::uint32_t top =
            static_cast<std::uint32_t>(i) * band_height;
        if (top >= fb.height())
            break; // More variants than pixel rows.
        std::uint32_t height = i + 1 == variants_.size()
            ? fb.height() - top
            : band_height;
        render::Framebuffer band(fb.width(), height);
        const render::RenderStats &stats =
            variants_[i].session.render(config, band);
        fb.blit(band, 0, top);
        total.rectOps += stats.rectOps;
        total.lineOps += stats.lineOps;
        total.eventsVisited += stats.eventsVisited;
    }
    return total;
}

render::RenderStats
SessionGroup::renderDiff(std::size_t a, std::size_t b,
                         const render::TimelineConfig &config,
                         render::Framebuffer &fb)
{
    render::Framebuffer fb_a(fb.width(), fb.height());
    render::Framebuffer fb_b(fb.width(), fb.height());
    const render::RenderStats &stats_a = session(a).render(config, fb_a);
    render::RenderStats total = stats_a;
    const render::RenderStats &stats_b = session(b).render(config, fb_b);
    total.rectOps += stats_b.rectOps;
    total.lineOps += stats_b.lineOps;
    total.eventsVisited += stats_b.eventsVisited;

    for (std::uint32_t y = 0; y < fb.height(); y++) {
        for (std::uint32_t x = 0; x < fb.width(); x++) {
            render::Rgba pa = fb_a.pixel(x, y);
            if (pa == fb_b.pixel(x, y)) {
                // Rec. 601 luma: agreement renders as gray context.
                std::uint8_t luma = static_cast<std::uint8_t>(
                    (299 * pa.r + 587 * pa.g + 114 * pa.b) / 1000);
                fb.setPixel(x, y, {luma, luma, luma, 255});
            } else {
                fb.setPixel(x, y, kDiffHighlight);
            }
        }
    }
    return total;
}

} // namespace session
} // namespace aftermath
