/**
 * @file
 * Fig 18: branch misprediction rate overlaid on the heatmap zoom.
 *
 * Hardware counters are sampled immediately before and after each task
 * execution; the difference quotient of the misprediction count renders
 * as a piecewise-constant rate per task. Visually, dark (long) tasks
 * carry high rates and light (short) tasks low rates. The bench renders
 * the overlay for a 5-CPU zoom window and verifies the visual claim:
 * within the window, the mean rate of the longest third of tasks exceeds
 * the mean rate of the shortest third.
 */

#include <algorithm>
#include <cstdio>

#include "common.h"

using namespace aftermath;

int
main()
{
    bench::banner("Fig 18",
                  "k-means: misprediction-rate overlay on the heatmap");

    runtime::RunResult result = bench::runKmeans();
    if (!result.ok) {
        std::fprintf(stderr, "simulation failed: %s\n",
                     result.error.c_str());
        return 1;
    }
    const trace::Trace &tr = result.trace;

    // Zoom: CPUs 0-4 over an early window (first iterations, where the
    // assignment churn — and hence the rate spread — is largest).
    TimeInterval span = tr.span();
    TimeInterval window{span.start + span.duration() * 8 / 100,
                        span.start + span.duration() * 18 / 100};

    // One-variant group: the same aligned-state machinery the A/B
    // benches use drives this zoom, and the misprediction indexes are
    // prefetched off the rendering path.
    session::SessionGroup group;
    std::size_t kmeans = group.add("kmeans", Session::view(tr));
    Session &session = group.session(kmeans);
    group.setView(window);
    CounterId counter =
        static_cast<CounterId>(trace::CoreCounter::BranchMispredictions);
    Session::WarmupPolicy policy;
    policy.counters = {counter};
    group.warmup(policy);

    render::TimelineConfig config;
    config.mode = render::TimelineMode::Heatmap;
    render::Framebuffer fb(1000, 300);
    session.render(config, fb);

    // One cached min/max index per (cpu, counter), already warm.
    render::TimelineLayout layout = session.layoutFor(fb);
    for (CpuId c = 0; c < 5 && c < tr.numCpus(); c++)
        session.renderCounterLane(c, counter, layout, {}, fb);
    std::string error;
    if (fb.writePpmFile("fig18_overlay.ppm", error))
        std::printf("wrote fig18_overlay.ppm\n");

    // Per-task rates within the window.
    filter::FilterSet f;
    f.add(std::make_shared<filter::TaskTypeFilter>(
        std::unordered_set<TaskTypeId>{workloads::kKmeansDistanceType}));
    f.add(std::make_shared<filter::IntervalFilter>(window));
    session.setFilters(f);
    auto rows = session.taskCounterIncreases(counter);
    if (rows.size() < 30) {
        std::fprintf(stderr, "window too sparse (%zu tasks)\n",
                     rows.size());
        return 1;
    }
    std::sort(rows.begin(), rows.end(),
              [](const auto &a, const auto &b) {
                  return a.duration < b.duration;
              });
    auto mean_rate = [&](std::size_t first, std::size_t last) {
        double sum = 0;
        for (std::size_t i = first; i < last; i++)
            sum += rows[i].ratePerKcycle();
        return sum / static_cast<double>(last - first);
    };
    double short_rate = mean_rate(0, rows.size() / 3);
    double long_rate = mean_rate(rows.size() * 2 / 3, rows.size());

    std::printf("\n");
    bench::row("tasks in zoom window",
               strFormat("%zu", rows.size()));
    bench::row("mean rate, shortest third",
               strFormat("%.2f mispred/kcycle", short_rate));
    bench::row("mean rate, longest third",
               strFormat("%.2f mispred/kcycle", long_rate));
    // The rate = M / duration mapping compresses the contrast (longer
    // tasks divide their larger counts by a larger duration), so a 20%
    // separation between the thirds is already a clear visual gradient.
    bool shape = long_rate > 1.2 * short_rate;
    bench::row("dark tasks carry high rates", shape ? "yes" : "NO");
    return shape ? 0 : 1;
}
