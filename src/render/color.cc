#include "render/color.h"

#include <algorithm>
#include <cmath>

#include "trace/state.h"

namespace aftermath {
namespace render {

Rgba
lerp(const Rgba &a, const Rgba &b, double t)
{
    t = std::clamp(t, 0.0, 1.0);
    auto mix = [t](std::uint8_t x, std::uint8_t y) {
        return static_cast<std::uint8_t>(
            std::lround(static_cast<double>(x) +
                        t * (static_cast<double>(y) -
                             static_cast<double>(x))));
    };
    return {mix(a.r, b.r), mix(a.g, b.g), mix(a.b, b.b), mix(a.a, b.a)};
}

Rgba
stateColor(std::uint32_t state_id)
{
    using trace::CoreState;
    switch (static_cast<CoreState>(state_id)) {
      case CoreState::TaskExec: return {26, 58, 128, 255};      // Dark blue.
      case CoreState::TaskCreation: return {230, 126, 34, 255}; // Orange.
      case CoreState::Idle: return {140, 190, 238, 255};        // Light blue.
      case CoreState::Broadcast: return {39, 174, 96, 255};     // Green.
      case CoreState::Reduction: return {142, 68, 173, 255};    // Purple.
      case CoreState::Synchronization: return {241, 196, 15, 255}; // Yellow.
      case CoreState::RuntimeInit: return {127, 140, 141, 255}; // Gray.
    }
    // Unknown states get a deterministic color from the type palette.
    return taskTypeColor(state_id);
}

Rgba
taskTypeColor(std::size_t type_index)
{
    // A repeating palette of well-separated hues; pink and ocher first to
    // echo Fig 9's initialization/computation colors.
    static const Rgba palette[] = {
        {231, 84, 128, 255},  // Pink.
        {204, 119, 34, 255},  // Ocher.
        {52, 152, 219, 255},  // Blue.
        {46, 204, 113, 255},  // Green.
        {155, 89, 182, 255},  // Purple.
        {241, 196, 15, 255},  // Yellow.
        {26, 188, 156, 255},  // Teal.
        {149, 165, 166, 255}, // Gray.
        {192, 57, 43, 255},   // Dark red.
        {41, 128, 185, 255},  // Dark blue.
    };
    return palette[type_index % std::size(palette)];
}

Rgba
numaNodeColor(std::uint32_t node)
{
    // Deterministic distinct hues around the color wheel; HSV with
    // golden-ratio hue stepping keeps adjacent node ids far apart.
    double hue = std::fmod(static_cast<double>(node) * 0.618033988749895,
                           1.0) * 360.0;
    double s = 0.65, v = 0.90;
    double c = v * s;
    double hp = hue / 60.0;
    double x = c * (1.0 - std::fabs(std::fmod(hp, 2.0) - 1.0));
    double r = 0, g = 0, b = 0;
    if (hp < 1) { r = c; g = x; }
    else if (hp < 2) { r = x; g = c; }
    else if (hp < 3) { g = c; b = x; }
    else if (hp < 4) { g = x; b = c; }
    else if (hp < 5) { r = x; b = c; }
    else { r = c; b = x; }
    double m = v - c;
    auto to8 = [m](double ch) {
        return static_cast<std::uint8_t>(std::lround((ch + m) * 255.0));
    };
    return {to8(r), to8(g), to8(b), 255};
}

Rgba
heatmapShade(std::uint64_t duration, std::uint64_t min_duration,
             std::uint64_t max_duration, std::uint32_t shades)
{
    if (shades < 2)
        shades = 2;
    if (max_duration <= min_duration)
        max_duration = min_duration + 1;
    double f;
    if (duration <= min_duration) {
        f = 0.0;
    } else if (duration >= max_duration) {
        f = 1.0;
    } else {
        f = static_cast<double>(duration - min_duration) /
            static_cast<double>(max_duration - min_duration);
    }
    // Quantize into the discrete shades (paper: heatmap with ten shades).
    double step = std::floor(f * (shades - 1) + 0.5) /
                  static_cast<double>(shades - 1);
    const Rgba white{255, 255, 255, 255};
    const Rgba dark_red{120, 8, 8, 255};
    return lerp(white, dark_red, step);
}

Rgba
numaHeatShade(double remote_fraction)
{
    const Rgba blue{41, 98, 255, 255};
    const Rgba pink{255, 64, 180, 255};
    return lerp(blue, pink, remote_fraction);
}

} // namespace render
} // namespace aftermath
