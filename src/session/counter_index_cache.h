/**
 * @file
 * Lazy per-(CPU, counter) store of n-ary min/max counter indexes.
 *
 * The paper precomputes one search tree per performance counter and per
 * core so any interval's extrema cost O(arity * log n) instead of a
 * rescan (section VI-B.c). This cache builds each tree on first query
 * and keeps it for the lifetime of the trace, so no consumer — renderer,
 * statistics, export — ever rebuilds an index the session already paid
 * for. Used by session::Session; usable standalone wherever one trace
 * outlives many extrema queries.
 *
 * The store is sharded per CPU with one lock per shard: lookups and
 * builds for different CPUs never contend, which is what lets
 * Session::warmup() construct the indexes of a many-core trace
 * concurrently. get()/getOrNull()/query()/counters() are safe to call
 * from multiple threads; clear() takes each shard lock in turn, but
 * callers must still guarantee no reference returned by get() is used
 * afterwards (entries die with the map).
 */

#ifndef AFTERMATH_SESSION_COUNTER_INDEX_CACHE_H
#define AFTERMATH_SESSION_COUNTER_INDEX_CACHE_H

#include <map>
#include <memory>
#include <vector>

#include "base/mutex.h"
#include "base/thread_annotations.h"
#include "base/types.h"
#include "index/counter_index.h"
#include "session/query_cache.h"
#include "trace/trace.h"

namespace aftermath {
namespace session {

/** Lazily built, memoized CounterIndex per (cpu, counter) pair. */
class CounterIndexCache
{
  public:
    /**
     * A cache over @p trace, which must stay alive and unchanged.
     *
     * @param arity Group size of every built index (the paper uses 100).
     */
    explicit CounterIndexCache(
        const trace::Trace &trace,
        std::uint32_t arity = index::CounterIndex::kDefaultArity);

    /**
     * The index of @p counter on @p cpu, built on first use. Panics on
     * out-of-range CPU ids; a counter never sampled on the CPU yields an
     * index over an empty array (every query invalid). The returned
     * reference stays valid until clear(). Thread-safe; concurrent
     * callers of the same (cpu, counter) build at most one index. When
     * @p built is non-null it is set to whether *this* call constructed
     * the index — exact even under concurrency (decided under the shard
     * lock), which is what lets a warm-up attribute its own builds
     * while other queries build concurrently.
     */
    const index::CounterIndex &get(CpuId cpu, CounterId counter,
                                   bool *built = nullptr);

    /** Like get(), but returns nullptr for out-of-range CPU ids. */
    const index::CounterIndex *getOrNull(CpuId cpu, CounterId counter);

    /**
     * Extrema of @p counter on @p cpu within @p interval through the
     * cached index; invalid for unknown CPUs or unsampled counters.
     */
    index::MinMax query(CpuId cpu, CounterId counter,
                        const TimeInterval &interval);

    /**
     * Drop every built index (counters preserved). Thread-safe against
     * concurrent get() calls, but references obtained before the clear
     * dangle — callers coordinate that externally.
     */
    void clear();

    /** Number of indexes currently built. */
    std::size_t size() const;

    /**
     * Aggregated hit/build accounting across every shard; builds counts
     * CounterIndex constructions.
     */
    CacheCounters counters() const;

    /** The arity used for every built index. */
    std::uint32_t arity() const { return arity_; }

  private:
    /**
     * One CPU's slice of the store, guarded by its own lock. Shards
     * share one rank (kCounterIndexShard) because no code path ever
     * holds two of them at once — clear()/size()/counters() visit
     * them strictly one at a time.
     */
    struct Shard
    {
        mutable base::Mutex mutex{base::lockrank::kCounterIndexShard,
                                  "counter-index-shard"};
        // unique_ptr because CounterIndex pins a reference to its
        // sample array and is neither copyable nor movable.
        std::map<CounterId, std::unique_ptr<index::CounterIndex>> entries
            AM_GUARDED_BY(mutex);
        CacheCounters counters AM_GUARDED_BY(mutex);
    };

    const trace::Trace &trace_;
    std::uint32_t arity_;
    std::vector<Shard> shards_; ///< One per CPU; never resized.
};

} // namespace session
} // namespace aftermath

#endif // AFTERMATH_SESSION_COUNTER_INDEX_CACHE_H
