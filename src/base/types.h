/**
 * @file
 * Fundamental scalar types and identifiers used throughout Aftermath.
 *
 * All timestamps are expressed in CPU cycles of the traced machine, as in
 * the original tool. Identifiers are plain integers so that trace frames
 * stay trivially serializable.
 */

#ifndef AFTERMATH_BASE_TYPES_H
#define AFTERMATH_BASE_TYPES_H

#include <cstdint>
#include <limits>

namespace aftermath {

/** A point in time, in cycles since the start of the trace. */
using TimeStamp = std::uint64_t;

/** Logical CPU (worker) identifier. */
using CpuId = std::uint32_t;

/** NUMA node identifier. */
using NodeId = std::uint32_t;

/** Task type identifier; by convention the work-function address. */
using TaskTypeId = std::uint64_t;

/** Unique identifier of one task execution (a task instance). */
using TaskInstanceId = std::uint64_t;

/** Identifier of a hardware or derived performance counter. */
using CounterId = std::uint32_t;

/** Identifier of a memory region registered with the runtime. */
using RegionId = std::uint64_t;

/** Sentinel for "no CPU". */
inline constexpr CpuId kInvalidCpu = std::numeric_limits<CpuId>::max();

/** Sentinel for "no NUMA node" (e.g. page not yet physically backed). */
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/** Sentinel for "no task instance" (e.g. a state outside any task). */
inline constexpr TaskInstanceId kInvalidTaskInstance =
    std::numeric_limits<TaskInstanceId>::max();

/** Sentinel timestamp greater than any valid time. */
inline constexpr TimeStamp kTimeMax = std::numeric_limits<TimeStamp>::max();

} // namespace aftermath

#endif // AFTERMATH_BASE_TYPES_H
