/**
 * @file
 * The per-CPU event arrays of the in-memory trace representation.
 *
 * Following the paper (section VI-B.c), each core keeps one array per type
 * of event (state changes, discrete events, performance counter samples,
 * communication events), sorted by timestamp. Binary search finds the
 * array slice relevant to any time interval.
 */

#ifndef AFTERMATH_TRACE_CPU_TIMELINE_H
#define AFTERMATH_TRACE_CPU_TIMELINE_H

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "base/time_interval.h"
#include "base/types.h"
#include "trace/event.h"

namespace aftermath {
namespace trace {

/** A contiguous index range [first, last) into one event array. */
struct SliceRange
{
    std::size_t first = 0;
    std::size_t last = 0;

    std::size_t size() const { return last - first; }
    bool empty() const { return last <= first; }
};

/**
 * All events recorded on one CPU (one worker thread).
 *
 * Events must be appended in non-decreasing timestamp order per array —
 * the total order per core that the trace format requires (paper section
 * VI-A). finalize() verifies this and the non-overlap of state events.
 */
class CpuTimeline
{
  public:
    /** Append a state event; starts must be non-decreasing. */
    void addState(const StateEvent &ev);

    /** Append a sample of counter @p counter. */
    void addCounterSample(CounterId counter, const CounterSample &sample);

    /** Append a discrete event. */
    void addDiscrete(const DiscreteEvent &ev);

    /** Append a communication event. */
    void addComm(const CommEvent &ev);

    /**
     * Validate ordering invariants.
     *
     * @param error Receives a description of the first violation.
     * @return true if all arrays are correctly ordered and states do not
     *         overlap.
     */
    bool finalize(std::string &error);

    /** All state events, sorted by start time, non-overlapping. */
    const std::vector<StateEvent> &states() const { return states_; }

    /** Samples of @p counter sorted by time (empty if never sampled). */
    const std::vector<CounterSample> &counterSamples(CounterId counter) const;

    /** Ids of the counters sampled on this CPU. */
    std::vector<CounterId> counterIds() const;

    /** All discrete events sorted by time. */
    const std::vector<DiscreteEvent> &discreteEvents() const
    {
        return discrete_;
    }

    /** All communication events sorted by time. */
    const std::vector<CommEvent> &commEvents() const { return comm_; }

    /**
     * The slice of state events overlapping @p interval.
     *
     * O(log n) by binary search: states are sorted by start and
     * non-overlapping, so their end times are sorted too.
     */
    SliceRange stateSlice(const TimeInterval &interval) const;

    /** The slice of samples of @p counter with time in [start, end). */
    SliceRange counterSlice(CounterId counter,
                            const TimeInterval &interval) const;

    /** The slice of discrete events with time in [start, end). */
    SliceRange discreteSlice(const TimeInterval &interval) const;

    /** The slice of comm events with time in [start, end). */
    SliceRange commSlice(const TimeInterval &interval) const;

    /** Largest end/sample timestamp on this CPU (0 if empty). */
    TimeStamp lastTime() const;

    /**
     * Total time spent in @p state within @p interval, clamping partially
     * overlapping state events to the interval.
     */
    TimeStamp timeInState(std::uint32_t state,
                          const TimeInterval &interval) const;

  private:
    std::vector<StateEvent> states_;
    std::map<CounterId, std::vector<CounterSample>> counters_;
    std::vector<DiscreteEvent> discrete_;
    std::vector<CommEvent> comm_;
};

} // namespace trace
} // namespace aftermath

#endif // AFTERMATH_TRACE_CPU_TIMELINE_H
