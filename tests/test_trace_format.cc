/** @file Round-trip and robustness tests of the on-disk trace format. */

#include <gtest/gtest.h>

#include <cstdio>

#include "trace/reader.h"
#include "trace/writer.h"
#include "trace_builder.h"

namespace aftermath {
namespace trace {
namespace {

using test_support::buildRandomTrace;
using test_support::expectTracesEqual;

/** The shared random-trace fixture at this file's historic density. */
Trace
randomTrace(std::uint64_t seed, std::uint32_t num_cpus = 4)
{
    test_support::RandomTraceOptions options;
    options.cpus = num_cpus;
    return buildRandomTrace(seed, options);
}

/** Property sweep over seeds x encodings. */
class FormatRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, Encoding>>
{};

TEST_P(FormatRoundTrip, PreservesEverything)
{
    auto [seed, encoding] = GetParam();
    Trace original = randomTrace(seed);
    std::vector<std::uint8_t> bytes = writeTrace(original, encoding);
    ReadResult result = readTrace(bytes);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.encoding, encoding);
    expectTracesEqual(original, result.trace);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, FormatRoundTrip,
    ::testing::Combine(::testing::Values(1, 2, 3, 42, 999),
                       ::testing::Values(Encoding::Raw,
                                         Encoding::Compact)));

TEST(Format, CompactIsSmallerThanRaw)
{
    Trace tr = randomTrace(7, 8);
    auto raw = writeTrace(tr, Encoding::Raw);
    auto compact = writeTrace(tr, Encoding::Compact);
    EXPECT_LT(compact.size(), raw.size() / 2)
        << "compact " << compact.size() << " vs raw " << raw.size();
}

TEST(Format, FileRoundTrip)
{
    Trace tr = randomTrace(21);
    std::string path = ::testing::TempDir() + "/aftermath_roundtrip.ostv";
    std::string error;
    ASSERT_TRUE(writeTraceFile(tr, path, Encoding::Compact, error))
        << error;
    ReadResult result = readTraceFile(path);
    ASSERT_TRUE(result.ok) << result.error;
    expectTracesEqual(tr, result.trace);
    std::remove(path.c_str());
}

TEST(Format, MissingFileReportsError)
{
    ReadResult result = readTraceFile("/nonexistent/path/trace.ostv");
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.error.find("cannot open"), std::string::npos);
}

TEST(FormatErrors, BadMagicRejected)
{
    std::vector<std::uint8_t> bytes = {'N', 'O', 'P', 'E', 0, 0, 0, 0};
    bytes.resize(32, 0);
    ReadResult result = readTrace(bytes);
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.error.find("magic"), std::string::npos);
}

TEST(FormatErrors, BadVersionRejected)
{
    Trace tr = randomTrace(1);
    auto bytes = writeTrace(tr, Encoding::Raw);
    bytes[4] = 0x63; // Version field.
    ReadResult result = readTrace(bytes);
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.error.find("version"), std::string::npos);
}

TEST(FormatErrors, UnknownEncodingRejected)
{
    Trace tr = randomTrace(1);
    auto bytes = writeTrace(tr, Encoding::Raw);
    bytes[6] = 0x7f; // Encoding field.
    ReadResult result = readTrace(bytes);
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.error.find("encoding"), std::string::npos);
}

TEST(FormatErrors, UnknownFrameTypeRejected)
{
    Trace tr = randomTrace(1);
    auto bytes = writeTrace(tr, Encoding::Raw);
    // Corrupt the first frame tag after the 16-byte header.
    bytes[16] = 0xee;
    ReadResult result = readTrace(bytes);
    EXPECT_FALSE(result.ok);
}

TEST(FormatErrors, EveryTruncationFailsCleanly)
{
    Trace tr = randomTrace(3, 2);
    auto bytes = writeTrace(tr, Encoding::Compact);
    // Chop the stream at many prefix lengths: the reader must reject
    // each without crashing (end-of-trace frame is mandatory).
    for (std::size_t len = 0; len < bytes.size() - 1;
         len += 1 + len / 16) {
        std::vector<std::uint8_t> prefix(bytes.begin(),
                                         bytes.begin() + len);
        ReadResult result = readTrace(prefix);
        EXPECT_FALSE(result.ok) << "prefix " << len << " unexpectedly ok";
        EXPECT_FALSE(result.error.empty());
    }
}

TEST(FormatErrors, EventBeforeTopologyRejected)
{
    TraceWriter writer(Encoding::Raw);
    writer.stateEvent(0, {{0, 10}, 0, kInvalidTaskInstance});
    auto bytes = writer.finish();
    ReadResult result = readTrace(bytes);
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.error.find("topology"), std::string::npos);
}

TEST(FormatErrors, EventOnCpuOutsideTopologyRejected)
{
    TraceWriter writer(Encoding::Raw);
    writer.topology(MachineTopology::uniform(1, 2));
    writer.stateEvent(5, {{0, 10}, 0, kInvalidTaskInstance});
    auto bytes = writer.finish();
    ReadResult result = readTrace(bytes);
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.error.find("outside topology"), std::string::npos);
}

TEST(FormatErrors, OverlappingStatesRejectedAtValidation)
{
    TraceWriter writer(Encoding::Raw);
    writer.topology(MachineTopology::uniform(1, 1));
    writer.stateEvent(0, {{0, 10}, 0, kInvalidTaskInstance});
    writer.stateEvent(0, {{5, 15}, 1, kInvalidTaskInstance});
    auto bytes = writer.finish();
    ReadResult result = readTrace(bytes);
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.error.find("validation"), std::string::npos);
}

TEST(FormatErrors, DuplicateTopologyRejected)
{
    TraceWriter writer(Encoding::Raw);
    writer.topology(MachineTopology::uniform(1, 1));
    writer.topology(MachineTopology::uniform(1, 1));
    auto bytes = writer.finish();
    ReadResult result = readTrace(bytes);
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.error.find("duplicate"), std::string::npos);
}

TEST(Format, InterleavedCpuStreamsAccepted)
{
    // Events from different CPUs freely interleaved; per-CPU order kept.
    TraceWriter writer(Encoding::Compact);
    writer.topology(MachineTopology::uniform(1, 2));
    writer.stateEvent(0, {{0, 10}, 0, kInvalidTaskInstance});
    writer.stateEvent(1, {{5, 25}, 1, kInvalidTaskInstance});
    writer.stateEvent(0, {{10, 30}, 2, kInvalidTaskInstance});
    writer.stateEvent(1, {{25, 30}, 0, kInvalidTaskInstance});
    writer.counterSample(1, 0, {5, 100});
    writer.counterSample(0, 0, {2, 50});
    auto bytes = writer.finish();
    ReadResult result = readTrace(bytes);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.trace.cpu(0).states().size(), 2u);
    EXPECT_EQ(result.trace.cpu(1).states().size(), 2u);
}

} // namespace
} // namespace trace
} // namespace aftermath
