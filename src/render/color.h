/**
 * @file
 * Colors and the palettes of the timeline modes.
 *
 * The palettes follow the paper's descriptions: dark blue for task
 * execution and light blue for idling (Fig 2), shades of red for the task
 * duration heatmap (darker = longer, Fig 7), one distinct color per task
 * type (Fig 9) and per NUMA node (Fig 14a-d), and a blue-to-pink gradient
 * for the NUMA heatmap (Fig 14e-f).
 */

#ifndef AFTERMATH_RENDER_COLOR_H
#define AFTERMATH_RENDER_COLOR_H

#include <cstdint>
#include <vector>

namespace aftermath {
namespace render {

/** An 8-bit RGBA color. */
struct Rgba
{
    std::uint8_t r = 0;
    std::uint8_t g = 0;
    std::uint8_t b = 0;
    std::uint8_t a = 255;

    constexpr bool operator==(const Rgba &other) const = default;
};

/** Linear interpolation between two colors, t in [0, 1]. */
Rgba lerp(const Rgba &a, const Rgba &b, double t);

/** Timeline background (visible where no event is drawn, Fig 7). */
inline constexpr Rgba kBackground{32, 32, 32, 255};

/** Alternate background for odd lanes, giving the striped look. */
inline constexpr Rgba kBackgroundAlt{48, 48, 48, 255};

/** Color of state @p state_id in state mode. */
Rgba stateColor(std::uint32_t state_id);

/** Distinct color of task type index @p type_index (typemap mode). */
Rgba taskTypeColor(std::size_t type_index);

/** Distinct color of NUMA node @p node (NUMA read/write map modes). */
Rgba numaNodeColor(std::uint32_t node);

/**
 * Heatmap shade for a task duration.
 *
 * @param duration Task duration.
 * @param min_duration Durations at/below map to the lightest shade.
 * @param max_duration Durations at/above map to the darkest shade.
 * @param shades Number of discrete shades (the paper uses 10).
 */
Rgba heatmapShade(std::uint64_t duration, std::uint64_t min_duration,
                  std::uint64_t max_duration, std::uint32_t shades);

/**
 * NUMA heatmap shade: blue for mostly-local accesses through pink for
 * mostly-remote (@p remote_fraction in [0, 1]).
 */
Rgba numaHeatShade(double remote_fraction);

} // namespace render
} // namespace aftermath

#endif // AFTERMATH_RENDER_COLOR_H
