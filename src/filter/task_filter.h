/**
 * @file
 * Filters over task instances.
 *
 * Filters control the contents of the timeline and the statistical views
 * (paper section II-A group 3): only tasks of a specific type, tasks whose
 * execution duration is in a certain range, or tasks that access certain
 * NUMA nodes. Filters compose conjunctively through FilterSet and apply
 * uniformly to rendering, statistics and data export.
 */

#ifndef AFTERMATH_FILTER_TASK_FILTER_H
#define AFTERMATH_FILTER_TASK_FILTER_H

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "base/types.h"
#include "trace/trace.h"

namespace aftermath {
namespace filter {

/** Predicate over task instances, evaluated against a trace. */
class TaskFilter
{
  public:
    virtual ~TaskFilter() = default;

    /** True if @p task passes the filter. */
    virtual bool matches(const trace::Trace &trace,
                         const trace::TaskInstance &task) const = 0;

    /** Human-readable description for UIs and reports. */
    virtual std::string describe() const = 0;
};

/** Keeps only tasks whose type is in a given set. */
class TaskTypeFilter : public TaskFilter
{
  public:
    explicit TaskTypeFilter(std::unordered_set<TaskTypeId> types)
        : types_(std::move(types))
    {}

    bool matches(const trace::Trace &trace,
                 const trace::TaskInstance &task) const override;
    std::string describe() const override;

  private:
    std::unordered_set<TaskTypeId> types_;
};

/** Keeps only tasks with duration in [min, max] cycles. */
class DurationFilter : public TaskFilter
{
  public:
    DurationFilter(TimeStamp min_duration, TimeStamp max_duration)
        : min_(min_duration), max_(max_duration)
    {}

    bool matches(const trace::Trace &trace,
                 const trace::TaskInstance &task) const override;
    std::string describe() const override;

  private:
    TimeStamp min_;
    TimeStamp max_;
};

/** Keeps only tasks executed on one of the given CPUs. */
class CpuFilter : public TaskFilter
{
  public:
    explicit CpuFilter(std::unordered_set<CpuId> cpus)
        : cpus_(std::move(cpus))
    {}

    bool matches(const trace::Trace &trace,
                 const trace::TaskInstance &task) const override;
    std::string describe() const override;

  private:
    std::unordered_set<CpuId> cpus_;
};

/** Keeps only tasks whose execution overlaps a time interval. */
class IntervalFilter : public TaskFilter
{
  public:
    explicit IntervalFilter(TimeInterval interval) : interval_(interval) {}

    bool matches(const trace::Trace &trace,
                 const trace::TaskInstance &task) const override;
    std::string describe() const override;

  private:
    TimeInterval interval_;
};

/**
 * Keeps only tasks that read (or write) data on a given NUMA node
 * ("tasks that write to certain NUMA nodes", paper section II-A).
 */
class NumaTargetFilter : public TaskFilter
{
  public:
    /**
     * @param node Target node of interest.
     * @param writes true to test write accesses, false for reads.
     */
    NumaTargetFilter(NodeId node, bool writes)
        : node_(node), writes_(writes)
    {}

    bool matches(const trace::Trace &trace,
                 const trace::TaskInstance &task) const override;
    std::string describe() const override;

  private:
    NodeId node_;
    bool writes_;
};

/**
 * Conjunction of task filters: a task passes if every added filter
 * accepts it. An empty set accepts everything.
 */
class FilterSet : public TaskFilter
{
  public:
    /** Add a filter to the conjunction. */
    void
    add(std::shared_ptr<const TaskFilter> f)
    {
        filters_.push_back(std::move(f));
    }

    /** Number of component filters. */
    std::size_t size() const { return filters_.size(); }

    bool matches(const trace::Trace &trace,
                 const trace::TaskInstance &task) const override;
    std::string describe() const override;

  private:
    std::vector<std::shared_ptr<const TaskFilter>> filters_;
};

} // namespace filter
} // namespace aftermath

#endif // AFTERMATH_FILTER_TASK_FILTER_H
