/**
 * @file
 * Fig 10: discrete derivatives of system time and resident size.
 *
 * The paper collects getrusage statistics per worker, aggregates them
 * with a derived counter, and plots the difference quotients: both the
 * kernel time and the memory footprint grow almost exclusively during
 * initialization, confirming that physical page allocation causes the
 * slow first phase.
 */

#include <cstdio>

#include "common.h"

using namespace aftermath;

int
main()
{
    bench::banner("Fig 10",
                  "seidel: d/dt of system time and resident size");

    runtime::RunResult result = bench::runSeidel(false);
    if (!result.ok) {
        std::fprintf(stderr, "simulation failed: %s\n",
                     result.error.c_str());
        return 1;
    }
    const trace::Trace &tr = result.trace;

    metrics::DerivedCounter sys = metrics::aggregateCounter(
        tr, static_cast<CounterId>(trace::CoreCounter::SystemTimeUs), 50);
    metrics::DerivedCounter rss = metrics::aggregateCounter(
        tr, static_cast<CounterId>(trace::CoreCounter::ResidentKb), 50);
    metrics::DerivedCounter dsys = metrics::differenceQuotient(sys);
    metrics::DerivedCounter drss = metrics::differenceQuotient(rss);

    std::printf("\nnormalized_time_pct, d_system_time_us_per_cycle, "
                "d_resident_kb_per_cycle\n");
    TimeStamp span = tr.span().duration();
    for (std::size_t i = 0; i < dsys.samples.size(); i++) {
        double pct = 100.0 * static_cast<double>(dsys.samples[i].time) /
                     static_cast<double>(span);
        double dr = i < drss.samples.size() ? drss.samples[i].value : 0.0;
        std::printf("%.1f, %.6g, %.6g\n", pct, dsys.samples[i].value, dr);
    }

    // Quantify "almost exclusively during initialization": the share of
    // total growth that happens in the first 30% of the execution.
    auto early_share = [&](const metrics::DerivedCounter &series) {
        if (series.samples.empty())
            return 0.0;
        double total = series.samples.back().value;
        double at_30 = 0.0;
        for (const auto &s : series.samples) {
            if (static_cast<double>(s.time) <=
                0.3 * static_cast<double>(span))
                at_30 = s.value;
        }
        return total > 0 ? at_30 / total : 0.0;
    };
    double sys_share = early_share(sys);
    double rss_share = early_share(rss);

    std::printf("\n");
    bench::row("total kernel time",
               strFormat("%.1f ms", sys.samples.back().value / 1000.0));
    bench::row("total resident growth",
               humanBytes(static_cast<std::uint64_t>(
                   rss.samples.back().value * 1024.0)));
    bench::row("kernel-time growth within first 30%",
               strFormat("%.0f%%", 100 * sys_share));
    bench::row("resident-size growth within first 30%",
               strFormat("%.0f%%", 100 * rss_share));
    bool shape = sys_share > 0.85 && rss_share > 0.85;
    bench::row("growth confined to initialization",
               shape ? "yes" : "NO");
    return shape ? 0 : 1;
}
