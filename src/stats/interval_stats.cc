#include "stats/interval_stats.h"

namespace aftermath {
namespace stats {

TimeStamp
IntervalStats::totalTime() const
{
    TimeStamp total = 0;
    for (const auto &[state, time] : timeInState)
        total += time;
    return total;
}

double
IntervalStats::stateFraction(std::uint32_t state) const
{
    TimeStamp total = totalTime();
    if (total == 0)
        return 0.0;
    auto it = timeInState.find(state);
    TimeStamp t = it == timeInState.end() ? 0 : it->second;
    return static_cast<double>(t) / static_cast<double>(total);
}

double
IntervalStats::averageParallelism(std::uint32_t task_exec_state) const
{
    if (interval.empty())
        return 0.0;
    auto it = timeInState.find(task_exec_state);
    TimeStamp t = it == timeInState.end() ? 0 : it->second;
    return static_cast<double>(t) / static_cast<double>(interval.duration());
}

IntervalStats
computeIntervalStats(const trace::Trace &trace, const TimeInterval &interval)
{
    IntervalStats stats;
    stats.interval = interval;

    for (CpuId c = 0; c < trace.numCpus(); c++) {
        const auto &states = trace.cpu(c).states();
        trace::SliceRange slice = trace.cpu(c).stateSlice(interval);
        for (std::size_t i = slice.first; i < slice.last; i++) {
            const trace::StateEvent &ev = states[i];
            stats.timeInState[ev.state] +=
                ev.interval.overlapDuration(interval);
        }
    }

    for (const trace::TaskInstance &task : trace.taskInstances()) {
        if (task.interval.overlaps(interval)) {
            stats.tasksOverlapping++;
            if (interval.contains(task.interval.start))
                stats.tasksStarted++;
        }
    }
    return stats;
}

} // namespace stats
} // namespace aftermath
