/**
 * @file
 * Symbol tables mapping work-function addresses to names.
 *
 * Aftermath relates visual elements to source code by extracting debug
 * symbols from the application's binary with the NM command-line tool
 * (paper section VI-C): selecting a task looks up the work-function
 * address and shows the function name. This module parses nm's text
 * output format and answers nearest-symbol queries.
 */

#ifndef AFTERMATH_SYMBOLS_SYMBOL_TABLE_H
#define AFTERMATH_SYMBOLS_SYMBOL_TABLE_H

#include <cstdint>
#include <istream>
#include <string>
#include <vector>

namespace aftermath {
namespace symbols {

/** One symbol from an nm listing. */
struct Symbol
{
    std::uint64_t address = 0;
    char kind = 'T'; ///< nm type letter; functions are T/t/W/w.
    std::string name;
};

/** An address-sorted symbol table. */
class SymbolTable
{
  public:
    /** Add a symbol (any order; the table sorts lazily). */
    void add(const Symbol &symbol);

    /**
     * Parse nm's default output: lines of "ADDRESS TYPE NAME" with a
     * hexadecimal address. Lines for undefined symbols ("    U name")
     * and unparsable lines are skipped.
     */
    static SymbolTable parseNm(std::istream &is);

    /** parseNm() over a string. */
    static SymbolTable parseNmString(const std::string &text);

    /**
     * The function symbol covering @p address: the symbol with the
     * greatest address <= the query, considering only function kinds
     * (T/t/W/w). Returns nullptr if none.
     */
    const Symbol *lookup(std::uint64_t address) const;

    /** The symbol at exactly @p address, or nullptr. */
    const Symbol *exact(std::uint64_t address) const;

    /** Number of symbols. */
    std::size_t size() const { return symbols_.size(); }

  private:
    void ensureSorted() const;

    mutable std::vector<Symbol> symbols_;
    mutable bool sorted_ = true;
};

} // namespace symbols
} // namespace aftermath

#endif // AFTERMATH_SYMBOLS_SYMBOL_TABLE_H
