/**
 * @file
 * Multi-resolution summary pyramids: O(pixels) answers at any zoom.
 *
 * Interactive queries must answer at UI latency regardless of trace
 * size, but an exact scan touches every event in the view interval —
 * at billion-event scale that is the wall (the ROADMAP's "O(pixels),
 * not O(events)" item; Traveler's aggregated task-trace navigation is
 * the exemplar). The pyramid precomputes, per CPU, hierarchical
 * summaries at power-of-two interval granularities:
 *
 *  - state occupancy: time spent per task state inside each node,
 *  - counter aggregates: min/max/sum/count of each counter's samples,
 *  - task-begin counts per node.
 *
 * Level 0 partitions the trace span into leaves of one fixed
 * granularity g0 (the smallest power of two putting the leaf count
 * near a few thousand); level k merges pairs of level k-1 nodes, so
 * any *leaf-aligned* interval decomposes into O(log n) nodes by the
 * canonical segment-tree walk — and the decomposed answer is exact
 * for that aligned interval, not an approximation of it.
 *
 * The query plane (session/query_engine.cc) uses this as follows: a
 * query carrying Resolution::Budget or Resolution::Pixels has its
 * interval snapped outward to the coarsest granularity within the
 * error budget, and the snapped interval is answered exactly from the
 * pyramid; the result reports the snapped interval and a
 * ResolutionInfo provenance. Resolution::Exact never touches this
 * structure.
 *
 * One caveat for bit-identity: the exact scan records a zero-valued
 * occupancy entry for a zero-duration state event inside the interval
 * (its slice includes the event, its overlap is zero); the pyramid
 * only records states with nonzero occupancy. Traces without
 * zero-duration state events — every writer in this repo — are
 * unaffected.
 *
 * TracePyramids is the lazily-built, per-CPU-sharded store shared
 * across every session viewing one trace (Session::SharedCaches), the
 * same idiom as CounterIndexCache: one lock per CPU shard, builds for
 * different CPUs never contend, references stay valid for the
 * pyramids' lifetime (the whole object is replaced on setTrace).
 */

#ifndef AFTERMATH_INDEX_SUMMARY_PYRAMID_H
#define AFTERMATH_INDEX_SUMMARY_PYRAMID_H

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "base/mutex.h"
#include "base/resolution.h"
#include "base/thread_annotations.h"
#include "base/time_interval.h"
#include "base/types.h"
#include "index/counter_index.h"
#include "trace/trace.h"

namespace aftermath {
namespace index {

/** The per-CPU pyramid: summary nodes at power-of-two granularities. */
class SummaryPyramid
{
  public:
    /** min/max/sum/count of one counter's samples inside one range. */
    struct CounterAggregate
    {
        std::uint64_t count = 0;
        std::int64_t min = 0;
        std::int64_t max = 0;
        /** Wrapping two's-complement sum (callers wanting averages at
         *  pyramid scale accept the same wrap the samples could). */
        std::int64_t sum = 0;
    };

    /**
     * Build the pyramid of @p cpu over @p trace with leaves of
     * @p leaf_granularity covering @p leaf_count slots from time 0.
     * The trace must stay alive and unchanged.
     */
    SummaryPyramid(const trace::Trace &trace, CpuId cpu,
                   TimeStamp leaf_granularity, std::uint64_t leaf_count);

    TimeStamp leafGranularity() const { return g0_; }
    std::uint64_t leafCount() const { return leafCount_; }

    /**
     * Exact state occupancy over the aligned leaf range
     * [@p first_leaf, @p last_leaf): adds time-per-state into @p into
     * (states with zero occupancy are absent) and counts the pyramid
     * nodes consulted into @p nodes_touched.
     */
    void occupancy(std::uint64_t first_leaf, std::uint64_t last_leaf,
                   std::map<std::uint32_t, TimeStamp> &into,
                   std::uint64_t &nodes_touched) const;

    /**
     * Approximate state occupancy over an *arbitrary* interval, for
     * sub-pixel render bands: whole leaves inside the interval are
     * exact; a partially covered boundary leaf contributes its
     * occupancy scaled by the covered fraction.
     */
    std::vector<std::pair<std::uint32_t, double>>
    occupancyOver(const TimeInterval &interval,
                  std::uint64_t &nodes_touched) const;

    /**
     * Exact counter aggregate over the aligned leaf range. A counter
     * never sampled on this CPU yields count == 0.
     */
    CounterAggregate counterAggregate(CounterId counter,
                                      std::uint64_t first_leaf,
                                      std::uint64_t last_leaf,
                                      std::uint64_t &nodes_touched) const;

    /**
     * Tasks of this CPU beginning inside the aligned leaf range (the
     * per-node task-begin counts summed over the decomposition).
     */
    std::uint64_t tasksStarted(std::uint64_t first_leaf,
                               std::uint64_t last_leaf,
                               std::uint64_t &nodes_touched) const;

    /** Bytes used by the node arrays. */
    std::size_t memoryBytes() const;

  private:
    struct Node
    {
        /** (state, time inside node), sorted by state id; zero-time
         *  states absent. */
        std::vector<std::pair<std::uint32_t, TimeStamp>> occupancy;
        /** One slot per id in counterIds_, same order. */
        std::vector<CounterAggregate> counters;
        std::uint64_t tasksStarted = 0;
    };

    /**
     * Canonical bottom-up decomposition of the leaf range
     * [first, last) into O(log n) nodes; calls @p visit on each.
     */
    template <typename Visit>
    void decompose(std::uint64_t first, std::uint64_t last,
                   std::uint64_t &nodes_touched, Visit &&visit) const;

    TimeStamp g0_;
    std::uint64_t leafCount_;
    std::vector<CounterId> counterIds_; ///< Sorted; slot order of nodes.
    /** levels_[0] = leaves; levels_[k] merges pairs of level k-1;
     *  top level has exactly one node. */
    std::vector<std::vector<Node>> levels_;
};

/**
 * The shared, per-CPU-sharded pyramid store of one trace. One leaf
 * granularity g0 for every CPU (chosen from the trace span), per-CPU
 * pyramids built lazily under per-shard locks (rank kPyramidShard),
 * plus the trace-global sorted task-start/end arrays that make the
 * interval task counts (tasksStarted / tasksOverlapping) and the
 * histogram's task selection O(log n) for any interval.
 */
class TracePyramids
{
  public:
    /** Target leaf count the granularity is chosen against. */
    static constexpr std::uint64_t kTargetLeaves = 4096;

    /** Pyramids over @p trace, which must stay alive and unchanged. */
    explicit TracePyramids(const trace::Trace &trace);

    /** Leaf granularity shared by every CPU's pyramid. */
    TimeStamp leafGranularity() const { return g0_; }

    /** Leaves per pyramid; the domain is [0, leafCount * g0). */
    std::uint64_t leafCount() const { return leafCount_; }

    /** End of the pyramid domain (>= the trace span's end). */
    TimeStamp domainEnd() const { return g0_ * leafCount_; }

    /**
     * The pyramid of @p cpu, built on first use; panics on
     * out-of-range ids. Thread-safe; the reference stays valid for
     * this object's lifetime. When @p built is non-null it is set to
     * whether *this* call constructed the pyramid (decided under the
     * shard lock), which lets PyramidBuildQuery attribute its builds.
     */
    const SummaryPyramid &get(CpuId cpu, bool *built = nullptr);

    /** Like get(), but returns nullptr for out-of-range CPU ids. */
    const SummaryPyramid *getOrNull(CpuId cpu, bool *built = nullptr);

    /** Number of pyramids currently built. */
    std::size_t size() const;

    /**
     * The granularity (a power-of-two multiple of g0) the engine
     * snaps @p interval to under @p resolution, or 0 when the request
     * must fall back to the exact scan (Exact kind, a budget finer
     * than one leaf, or a zero-width Pixels request).
     */
    TimeStamp granularityFor(const Resolution &resolution,
                             const TimeInterval &interval) const;

    /**
     * @p interval with both edges snapped outward to multiples of
     * @p granularity and clamped to the pyramid domain. Each edge
     * moves by less than @p granularity; the result is leaf-aligned.
     */
    TimeInterval snap(const TimeInterval &interval,
                      TimeStamp granularity) const;

    /** Leaf range [first, last) of a leaf-aligned @p interval. */
    std::pair<std::uint64_t, std::uint64_t>
    leafRange(const TimeInterval &interval) const;

    /** Tasks (trace-wide) whose start lies inside @p interval. */
    std::uint64_t tasksStartedIn(const TimeInterval &interval) const;

    /** Tasks (trace-wide) overlapping @p interval. */
    std::uint64_t tasksOverlapping(const TimeInterval &interval) const;

    /** All task instances sorted by start time (ties by trace order). */
    const std::vector<const trace::TaskInstance *> &tasksByStart() const
    {
        return tasksByStart_;
    }

    /**
     * Index range [first, last) into tasksByStart() of the tasks whose
     * start lies inside @p interval.
     */
    std::pair<std::size_t, std::size_t>
    taskStartRange(const TimeInterval &interval) const;

  private:
    /**
     * One CPU's slot, guarded by its own lock. Shards share one rank
     * (kPyramidShard) because no code path holds two at once.
     */
    struct Shard
    {
        mutable base::Mutex mutex{base::lockrank::kPyramidShard,
                                  "pyramid-shard"};
        std::unique_ptr<SummaryPyramid> pyramid AM_GUARDED_BY(mutex);
    };

    const trace::Trace &trace_;
    TimeStamp g0_ = 1;
    std::uint64_t leafCount_ = 1;
    std::vector<Shard> shards_; ///< One per CPU; never resized.

    // Immutable after construction: trace-global task arrays.
    std::vector<TimeStamp> taskStarts_; ///< Sorted start times.
    std::vector<TimeStamp> taskEnds_;   ///< Sorted end times.
    std::vector<const trace::TaskInstance *> tasksByStart_;
};

} // namespace index
} // namespace aftermath

#endif // AFTERMATH_INDEX_SUMMARY_PYRAMID_H
