/**
 * @file
 * Derived counters: time series computed from trace events.
 *
 * Aftermath lets the user configure generators for metrics derived from
 * high-level events or combining existing counters (paper section II-A
 * group 5): the number of workers in a state, average task duration,
 * discrete derivatives, counter ratios and per-worker aggregations. The
 * generators live in the metrics/ module; they all produce this common
 * series type, which the counter overlay renders like any raw counter.
 */

#ifndef AFTERMATH_METRICS_DERIVED_COUNTER_H
#define AFTERMATH_METRICS_DERIVED_COUNTER_H

#include <string>
#include <vector>

#include "base/time_interval.h"
#include "base/types.h"

namespace aftermath {
namespace metrics {

/** One sample of a derived series. */
struct DerivedSample
{
    TimeStamp time = 0;
    double value = 0.0;
};

/** A named, time-ordered derived series. */
struct DerivedCounter
{
    std::string name;
    std::vector<DerivedSample> samples;

    /** Minimum sample value (0 if empty). */
    double minValue() const;

    /** Maximum sample value (0 if empty). */
    double maxValue() const;

    /** Largest sample timestamp (0 if empty). */
    TimeStamp lastTime() const;
};

} // namespace metrics
} // namespace aftermath

#endif // AFTERMATH_METRICS_DERIVED_COUNTER_H
