/**
 * @file
 * A thread-safe checkout pool of per-trace TimelineRenderer instances.
 *
 * A TimelineRenderer accumulates caches worth keeping across redraws —
 * the task-type palette assignment, per-task color and remote-fraction
 * memos — and pays a task-type scan at construction. The asynchronous
 * render executor used to rebuild one from scratch per query; the pool
 * makes the caches survive instead: checkout() hands an idle renderer
 * of the session's current trace (or constructs one on a miss), the
 * RAII lease returns it on destruction, and repeated async
 * TimelineRenderQuery executions stop paying construction cost.
 * Session's synchronous render path checks out of the same pool, so
 * sync and async redraws share one warm palette.
 *
 * The pool is bound to one trace at a time: setTrace() invalidates
 * every idle renderer (their caches index the old trace's task types)
 * and re-keys reuse to the new trace. A lease checked out against an
 * older trace — an in-flight executor that captured the trace before a
 * swap — still works (it constructs and keeps its own renderer); its
 * return is simply dropped instead of poisoning the pool. All methods
 * are safe from any thread; each leased renderer is exclusively owned
 * by its lease. Construct the pool with std::make_shared — leases keep
 * it alive through shared_from_this(), so executors outliving the
 * session stay safe.
 */

#ifndef AFTERMATH_SESSION_RENDERER_POOL_H
#define AFTERMATH_SESSION_RENDERER_POOL_H

#include <cstddef>
#include <memory>
#include <vector>

#include "base/mutex.h"
#include "base/thread_annotations.h"
#include "render/timeline_renderer.h"
#include "trace/trace.h"

namespace aftermath {
namespace session {

/** Checkout pool of TimelineRenderer instances for one current trace. */
class RendererPool
    : public std::enable_shared_from_this<RendererPool>
{
  public:
    /** Cumulative accounting; observable like every session cache. */
    struct Counters
    {
        /** Checkouts served by constructing a fresh renderer. */
        std::size_t created = 0;

        /** Checkouts served from an idle pooled renderer. */
        std::size_t reused = 0;

        /** Leases returned to the pool (kept or dropped). */
        std::size_t returned = 0;

        /** Returned renderers discarded: stale trace or over capacity. */
        std::size_t dropped = 0;
    };

    /**
     * Exclusive ownership of one checked-out renderer; returns it to
     * the pool on destruction. Movable, not copyable; keeps the pool
     * and the renderer's trace alive. A default-constructed or
     * moved-from lease is inert.
     */
    class Lease
    {
      public:
        Lease() = default;
        Lease(Lease &&other) noexcept = default;
        Lease &
        operator=(Lease &&other) noexcept
        {
            if (this != &other) {
                release();
                pool_ = std::move(other.pool_);
                trace_ = std::move(other.trace_);
                renderer_ = std::move(other.renderer_);
            }
            return *this;
        }
        ~Lease() { release(); }

        Lease(const Lease &) = delete;
        Lease &operator=(const Lease &) = delete;

        /** True if the lease holds a renderer. */
        bool valid() const { return renderer_ != nullptr; }

        render::TimelineRenderer &operator*() const { return *renderer_; }
        render::TimelineRenderer *operator->() const
        {
            return renderer_.get();
        }

      private:
        friend class RendererPool;

        Lease(std::shared_ptr<RendererPool> pool,
              std::shared_ptr<const trace::Trace> trace,
              std::unique_ptr<render::TimelineRenderer> renderer)
            : pool_(std::move(pool)), trace_(std::move(trace)),
              renderer_(std::move(renderer))
        {}

        /** Hand the renderer back (no-op when inert). */
        void release();

        std::shared_ptr<RendererPool> pool_;
        std::shared_ptr<const trace::Trace> trace_;
        std::unique_ptr<render::TimelineRenderer> renderer_;
    };

    /** A pool keeping at most @p capacity idle renderers. */
    explicit RendererPool(std::size_t capacity = 4)
        : capacity_(capacity)
    {}

    /**
     * Bind the pool to @p trace: every idle renderer of the previous
     * trace is dropped (counted), and reuse is keyed to the new one.
     * Session::setTrace() calls this from the driving thread.
     */
    void setTrace(std::shared_ptr<const trace::Trace> trace);

    /**
     * Check a renderer of @p trace out. Reuses an idle instance when
     * @p trace is the pool's current trace and one is available;
     * constructs a fresh renderer otherwise (construction happens
     * outside the pool lock — concurrent checkouts never serialize on
     * the task-type scan).
     */
    Lease checkout(const std::shared_ptr<const trace::Trace> &trace);

    /**
     * Bound the idle set to @p capacity renderers; surplus returns are
     * dropped. Shrinking evicts immediately.
     */
    void setCapacity(std::size_t capacity);

    /** The idle-set bound. */
    std::size_t capacity() const;

    /** Renderers currently idle in the pool. */
    std::size_t idleCount() const;

    /** Cumulative checkout/return accounting. */
    Counters counters() const;

  private:
    /** Return one leased renderer; keeps it only if trace is current. */
    void checkin(const trace::Trace *trace,
                 std::unique_ptr<render::TimelineRenderer> renderer);

    mutable base::Mutex mutex_{base::lockrank::kRendererPool,
                               "renderer-pool"};
    std::shared_ptr<const trace::Trace> current_ AM_GUARDED_BY(mutex_);
    std::vector<std::unique_ptr<render::TimelineRenderer>> idle_
        AM_GUARDED_BY(mutex_);
    std::size_t capacity_ AM_GUARDED_BY(mutex_);
    Counters counters_ AM_GUARDED_BY(mutex_);
};

} // namespace session
} // namespace aftermath

#endif // AFTERMATH_SESSION_RENDERER_POOL_H
