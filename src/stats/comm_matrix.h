/**
 * @file
 * NUMA communication incidence matrix.
 *
 * An application-wide summary of memory locality and communication: the
 * overall proportion of communication between each pair of NUMA nodes
 * (paper Fig 15). A non-optimized execution shows uniform deep red (every
 * node talks to every node); a NUMA-optimized one shows a sharp diagonal.
 */

#ifndef AFTERMATH_STATS_COMM_MATRIX_H
#define AFTERMATH_STATS_COMM_MATRIX_H

#include <cstdint>
#include <string>
#include <vector>

#include "base/time_interval.h"
#include "base/types.h"
#include "trace/trace.h"

namespace aftermath {
namespace stats {

/** Bytes exchanged between each ordered pair of NUMA nodes. */
class CommMatrix
{
  public:
    /**
     * Accumulate data-transfer communication events within @p interval.
     *
     * Steal/push events carry no bytes and are ignored.
     */
    static CommMatrix fromTrace(const trace::Trace &trace,
                                const TimeInterval &interval);

    /** Accumulate over the whole trace span. */
    static CommMatrix fromTrace(const trace::Trace &trace);

    /**
     * Reconstruct a matrix from its row-major cells — the decode half
     * of the wire serialization (stats/export.h). @p cells must hold
     * exactly @p num_nodes * @p num_nodes entries ([src * num_nodes +
     * dst], as bytes() indexes them).
     */
    static CommMatrix fromCells(std::uint32_t num_nodes,
                                std::vector<std::uint64_t> cells);

    /** Number of nodes (matrix is numNodes x numNodes). */
    std::uint32_t numNodes() const { return numNodes_; }

    /** Bytes moved from @p src to @p dst. */
    std::uint64_t bytes(NodeId src, NodeId dst) const;

    /** Total bytes across all pairs. */
    std::uint64_t totalBytes() const;

    /** bytes(src, dst) / totalBytes (0 when the matrix is empty). */
    double fraction(NodeId src, NodeId dst) const;

    /**
     * Fraction of all traffic that stays on its own node — the sharpness
     * of Fig 15's diagonal (1.0 = perfect locality).
     */
    double diagonalFraction() const;

    /** Largest entry, used to normalize shades when rendering. */
    std::uint64_t maxBytes() const;

    /** ASCII rendering with one shade character per cell (for reports). */
    std::string toAscii() const;

  private:
    std::uint32_t numNodes_ = 0;
    std::vector<std::uint64_t> cells_; // Row-major [src * numNodes + dst].
};

} // namespace stats
} // namespace aftermath

#endif // AFTERMATH_STATS_COMM_MATRIX_H
