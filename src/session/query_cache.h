/**
 * @file
 * Generic memoization primitives for the session query facade.
 *
 * Every cache inside session::Session follows the same discipline: build
 * on first use, serve repeated queries from memory, and count hits and
 * builds so tests (and users tuning an interactive frontend) can observe
 * cache behaviour instead of guessing. MemoCache is that discipline in
 * one reusable type, with an opt-in LRU capacity bound for callers whose
 * key stream is unbounded (continuous zooming queries a never-repeating
 * sequence of intervals).
 *
 * MemoCache itself is not synchronized: every instance lives behind an
 * externally held lock (SessionMemo's caches under SessionMemo::mutex,
 * annotated AM_GUARDED_BY so the thread-safety analysis enforces the
 * contract at the member level). Keeping the lock outside means one
 * acquisition covers a tryGet()/insertOrGet() pair instead of two.
 */

#ifndef AFTERMATH_SESSION_QUERY_CACHE_H
#define AFTERMATH_SESSION_QUERY_CACHE_H

#include <cstdint>
#include <list>
#include <map>
#include <utility>

namespace aftermath {
namespace session {

/** Cumulative hit/build/eviction counters of one memoization cache. */
struct CacheCounters
{
    /** Queries answered from the cache. */
    std::uint64_t hits = 0;

    /** Queries that had to construct the value. */
    std::uint64_t builds = 0;

    /** Entries dropped by the LRU capacity bound (0 when unbounded). */
    std::uint64_t evictions = 0;

    /** Total queries observed. */
    std::uint64_t total() const { return hits + builds; }
};

/**
 * An ordered-map memoization cache with hit/build accounting and an
 * optional LRU capacity bound.
 *
 * Unbounded by default: values are built at most once per key until
 * clear(), and references returned by getOrBuild() stay valid until
 * clear(). With setCapacity(n > 0) the cache keeps only the n most
 * recently used entries; a returned reference then stays valid only
 * until the entry's eviction (at the earliest, n getOrBuild() calls
 * with other keys later). Counters are cumulative across clear() so
 * invalidation (filter changes, trace swaps) remains observable from
 * the outside.
 */
template <typename Key, typename Value>
class MemoCache
{
  public:
    /** The cached value for @p key, built with @p build() on miss. */
    template <typename Builder>
    const Value &
    getOrBuild(const Key &key, Builder &&build)
    {
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            counters_.hits++;
            lru_.splice(lru_.begin(), lru_, it->second.lruIt);
            return it->second.value;
        }
        counters_.builds++;
        Value value = build();
        lru_.push_front(key);
        it = entries_.emplace(key, Entry{std::move(value), lru_.begin()})
                 .first;
        // The new entry is most-recently-used; with capacity >= 1 the
        // trim below can never evict it, so the reference stays valid.
        trimToCapacity();
        return it->second.value;
    }

    /**
     * The cached value for @p key, or nullptr on a miss. A hit counts
     * and refreshes the entry's LRU position; a miss counts nothing
     * (pair with insertOrGet(), which counts the build, when the caller
     * computes the value out of line — the async query engine computes
     * on a worker between the two calls).
     */
    const Value *
    tryGet(const Key &key)
    {
        auto it = entries_.find(key);
        if (it == entries_.end())
            return nullptr;
        counters_.hits++;
        lru_.splice(lru_.begin(), lru_, it->second.lruIt);
        return &it->second.value;
    }

    /**
     * Insert @p value for @p key (counting one build) and return the
     * cached copy. If the key is already present — another computation
     * of the same query published first — the existing entry wins and
     * nothing is counted, so racing producers never double-count.
     */
    const Value &
    insertOrGet(const Key &key, Value &&value)
    {
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second.lruIt);
            return it->second.value;
        }
        counters_.builds++;
        lru_.push_front(key);
        it = entries_.emplace(key, Entry{std::move(value), lru_.begin()})
                 .first;
        trimToCapacity();
        return it->second.value;
    }

    /**
     * Bound the cache to the @p capacity most recently used entries;
     * 0 restores the default unbounded mode. Shrinking below the
     * current size evicts immediately.
     */
    void
    setCapacity(std::size_t capacity)
    {
        capacity_ = capacity;
        trimToCapacity();
    }

    /** The capacity bound; 0 means unbounded. */
    std::size_t capacity() const { return capacity_; }

    /** Drop every entry; counters are preserved. */
    void
    clear()
    {
        entries_.clear();
        lru_.clear();
    }

    /** Number of live entries. */
    std::size_t size() const { return entries_.size(); }

    /** Cumulative hit/build/eviction counters. */
    const CacheCounters &counters() const { return counters_; }

  private:
    struct Entry
    {
        Value value;
        typename std::list<Key>::iterator lruIt;
    };

    void
    trimToCapacity()
    {
        if (capacity_ == 0)
            return;
        while (entries_.size() > capacity_) {
            entries_.erase(lru_.back());
            lru_.pop_back();
            counters_.evictions++;
        }
    }

    std::map<Key, Entry> entries_;
    std::list<Key> lru_; ///< Front = most recently used.
    std::size_t capacity_ = 0; ///< 0 = unbounded.
    CacheCounters counters_;
};

} // namespace session
} // namespace aftermath

#endif // AFTERMATH_SESSION_QUERY_CACHE_H
