/**
 * @file
 * Task types, task instances and task-level memory accesses.
 */

#ifndef AFTERMATH_TRACE_TASK_H
#define AFTERMATH_TRACE_TASK_H

#include <cstdint>
#include <string>

#include "base/time_interval.h"
#include "base/types.h"

namespace aftermath {
namespace trace {

/**
 * A task type: the work function executed by tasks of this type.
 *
 * Identified by the work-function address (paper section II-B mode 3);
 * the symbol table maps the address back to a source-level name.
 */
struct TaskType
{
    TaskTypeId id = 0; ///< Work-function address.
    std::string name;  ///< Demangled function name, if known.
};

/** One execution of a task on one CPU. */
struct TaskInstance
{
    TaskInstanceId id = kInvalidTaskInstance;
    TaskTypeId type = 0;
    CpuId cpu = kInvalidCpu;
    TimeInterval interval;

    /** Execution duration in cycles. */
    TimeStamp duration() const { return interval.duration(); }
};

/**
 * A read or write by a task instance to a registered memory region.
 *
 * Accesses reference raw addresses; the trace resolves them to memory
 * regions (and thereby NUMA nodes) on demand, storing region placement
 * only once regardless of the number of accesses (paper section VI-A).
 */
struct MemAccess
{
    TaskInstanceId task = kInvalidTaskInstance;
    std::uint64_t address = 0;
    std::uint64_t size = 0;
    bool isWrite = false;
};

} // namespace trace
} // namespace aftermath

#endif // AFTERMATH_TRACE_TASK_H
