#include "machine/region_placement.h"

#include "base/logging.h"

namespace aftermath {
namespace machine {

RegionPlacementMap::RegionPlacementMap(std::uint32_t num_nodes,
                                       std::uint64_t page_size)
    : numNodes_(num_nodes), pageSize_(page_size)
{
    AFTERMATH_ASSERT(num_nodes > 0, "placement map needs >= 1 node");
    AFTERMATH_ASSERT(page_size > 0, "page size must be positive");
}

void
RegionPlacementMap::registerRegion(RegionId id, std::uint64_t size,
                                   NodeId preferred, bool fresh)
{
    if (id >= placements_.size())
        placements_.resize(id + 1);
    RegionPlacement &p = placements_[id];
    p.size = size;
    p.preferred = preferred;
    p.fresh = fresh;
    p.node = kInvalidNode;
    p.touched = false;
    p.interleaved = false;
}

std::uint64_t
RegionPlacementMap::touch(RegionId id, NodeId writer_node,
                          PlacementPolicy policy)
{
    AFTERMATH_ASSERT(id < placements_.size(),
                     "touch of unregistered region %llu",
                     static_cast<unsigned long long>(id));
    RegionPlacement &p = placements_[id];
    if (p.touched)
        return 0;
    p.touched = true;

    switch (policy) {
      case PlacementPolicy::FirstTouch:
        if (p.fresh) {
            p.node = writer_node;
        } else {
            // Recycled pool buffer: it is already physically backed
            // wherever it was first allocated, which under a
            // NUMA-oblivious runtime is effectively arbitrary. A
            // deterministic hash of the region id stands in for that
            // location (cf. the poor write locality of paper Fig 14c).
            std::uint64_t h = id * 0x9e3779b97f4a7c15ull;
            p.node = static_cast<NodeId>((h >> 32) % numNodes_);
        }
        break;
      case PlacementPolicy::Interleave:
        p.interleaved = true;
        // Majority node rotates so that interleaved regions spread.
        p.node = static_cast<NodeId>(interleaveNext_++ % numNodes_);
        break;
      case PlacementPolicy::Explicit:
        p.node = p.preferred != kInvalidNode ? p.preferred : writer_node;
        break;
    }

    if (!p.fresh)
        return 0; // Recycled pool buffer: already physically backed.
    return (p.size + pageSize_ - 1) / pageSize_;
}

const RegionPlacement &
RegionPlacementMap::placement(RegionId id) const
{
    AFTERMATH_ASSERT(id < placements_.size(),
                     "placement of unregistered region %llu",
                     static_cast<unsigned long long>(id));
    return placements_[id];
}

std::vector<std::uint64_t>
RegionPlacementMap::bytesPerNode(RegionId id) const
{
    const RegionPlacement &p = placement(id);
    std::vector<std::uint64_t> out(numNodes_, 0);
    if (!p.touched || p.node == kInvalidNode)
        return out;
    if (p.interleaved) {
        std::uint64_t share = p.size / numNodes_;
        for (NodeId n = 0; n < numNodes_; n++)
            out[n] = share;
        out[p.node] += p.size - share * numNodes_;
    } else {
        out[p.node] = p.size;
    }
    return out;
}

NodeId
RegionPlacementMap::homeNode(RegionId id) const
{
    return placement(id).node;
}

} // namespace machine
} // namespace aftermath
