#include "trace/cpu_timeline.h"

#include <algorithm>

#include "base/string_util.h"

namespace aftermath {
namespace trace {

namespace {

/** Slice of a vector sorted by a time projection, overlapping [s, e). */
template <typename Event, typename GetTime>
SliceRange
pointSlice(const std::vector<Event> &events, const TimeInterval &interval,
           GetTime get_time)
{
    auto first = std::lower_bound(
        events.begin(), events.end(), interval.start,
        [&](const Event &ev, TimeStamp t) { return get_time(ev) < t; });
    auto last = std::lower_bound(
        first, events.end(), interval.end,
        [&](const Event &ev, TimeStamp t) { return get_time(ev) < t; });
    return {static_cast<std::size_t>(first - events.begin()),
            static_cast<std::size_t>(last - events.begin())};
}

} // namespace

void
CpuTimeline::addState(const StateEvent &ev)
{
    states_.push_back(ev);
}

void
CpuTimeline::addCounterSample(CounterId counter, const CounterSample &sample)
{
    counters_[counter].push_back(sample);
}

void
CpuTimeline::addDiscrete(const DiscreteEvent &ev)
{
    discrete_.push_back(ev);
}

void
CpuTimeline::addComm(const CommEvent &ev)
{
    comm_.push_back(ev);
}

bool
CpuTimeline::finalize(std::string &error)
{
    for (std::size_t i = 0; i < states_.size(); i++) {
        const StateEvent &ev = states_[i];
        if (ev.interval.end < ev.interval.start) {
            error = strFormat("state %zu has inverted interval", i);
            return false;
        }
        if (i > 0 && ev.interval.start < states_[i - 1].interval.end) {
            error = strFormat("state %zu overlaps its predecessor", i);
            return false;
        }
    }
    for (const auto &[id, samples] : counters_) {
        for (std::size_t i = 1; i < samples.size(); i++) {
            if (samples[i].time < samples[i - 1].time) {
                error = strFormat("counter %u sample %zu out of order",
                                  id, i);
                return false;
            }
        }
    }
    for (std::size_t i = 1; i < discrete_.size(); i++) {
        if (discrete_[i].time < discrete_[i - 1].time) {
            error = strFormat("discrete event %zu out of order", i);
            return false;
        }
    }
    for (std::size_t i = 1; i < comm_.size(); i++) {
        if (comm_[i].time < comm_[i - 1].time) {
            error = strFormat("comm event %zu out of order", i);
            return false;
        }
    }
    return true;
}

const std::vector<CounterSample> &
CpuTimeline::counterSamples(CounterId counter) const
{
    static const std::vector<CounterSample> empty;
    auto it = counters_.find(counter);
    return it == counters_.end() ? empty : it->second;
}

std::vector<CounterId>
CpuTimeline::counterIds() const
{
    std::vector<CounterId> ids;
    ids.reserve(counters_.size());
    for (const auto &[id, samples] : counters_)
        ids.push_back(id);
    return ids;
}

SliceRange
CpuTimeline::stateSlice(const TimeInterval &interval) const
{
    // First state whose end is beyond the interval start: since states
    // are non-overlapping and sorted by start, ends are sorted as well.
    auto first = std::lower_bound(
        states_.begin(), states_.end(), interval.start,
        [](const StateEvent &ev, TimeStamp t) {
            return ev.interval.end <= t;
        });
    // First state starting at/after the interval end terminates the slice.
    auto last = std::lower_bound(
        first, states_.end(), interval.end,
        [](const StateEvent &ev, TimeStamp t) {
            return ev.interval.start < t;
        });
    return {static_cast<std::size_t>(first - states_.begin()),
            static_cast<std::size_t>(last - states_.begin())};
}

SliceRange
CpuTimeline::counterSlice(CounterId counter,
                          const TimeInterval &interval) const
{
    return pointSlice(counterSamples(counter), interval,
                      [](const CounterSample &s) { return s.time; });
}

SliceRange
CpuTimeline::discreteSlice(const TimeInterval &interval) const
{
    return pointSlice(discrete_, interval,
                      [](const DiscreteEvent &ev) { return ev.time; });
}

SliceRange
CpuTimeline::commSlice(const TimeInterval &interval) const
{
    return pointSlice(comm_, interval,
                      [](const CommEvent &ev) { return ev.time; });
}

TimeStamp
CpuTimeline::lastTime() const
{
    TimeStamp last = 0;
    if (!states_.empty())
        last = std::max(last, states_.back().interval.end);
    for (const auto &[id, samples] : counters_) {
        if (!samples.empty())
            last = std::max(last, samples.back().time);
    }
    if (!discrete_.empty())
        last = std::max(last, discrete_.back().time);
    if (!comm_.empty())
        last = std::max(last, comm_.back().time);
    return last;
}

TimeStamp
CpuTimeline::timeInState(std::uint32_t state,
                         const TimeInterval &interval) const
{
    SliceRange slice = stateSlice(interval);
    TimeStamp total = 0;
    for (std::size_t i = slice.first; i < slice.last; i++) {
        const StateEvent &ev = states_[i];
        if (ev.state == state)
            total += ev.interval.overlapDuration(interval);
    }
    return total;
}

} // namespace trace
} // namespace aftermath
