/**
 * @file
 * Aggregate statistics for a user-selected interval.
 *
 * The statistical views present aggregate quantitative information for a
 * user-selected interval from the timeline (paper section II-A group 2):
 * per-state time breakdown, average parallelism and task counts.
 */

#ifndef AFTERMATH_STATS_INTERVAL_STATS_H
#define AFTERMATH_STATS_INTERVAL_STATS_H

#include <cstdint>
#include <map>

#include "base/time_interval.h"
#include "base/types.h"
#include "trace/trace.h"

namespace aftermath {
namespace stats {

/** Per-state and task statistics of one timeline interval. */
struct IntervalStats
{
    TimeInterval interval;
    /** Total worker time per state id within the interval. */
    std::map<std::uint32_t, TimeStamp> timeInState;
    /** Tasks whose execution overlaps the interval. */
    std::uint64_t tasksOverlapping = 0;
    /** Tasks that started within the interval. */
    std::uint64_t tasksStarted = 0;

    /** Total worker time across all states. */
    TimeStamp totalTime() const;

    /** Fraction of worker time spent in @p state (0 if no time at all). */
    double stateFraction(std::uint32_t state) const;

    /**
     * Average parallelism: mean number of workers executing tasks
     * simultaneously (task-exec time / interval duration).
     */
    double averageParallelism(std::uint32_t task_exec_state) const;
};

} // namespace stats
} // namespace aftermath

#endif // AFTERMATH_STATS_INTERVAL_STATS_H
