/** @file Structural tests of the seidel, k-means and synthetic workloads. */

#include <gtest/gtest.h>

#include <set>

#include "workloads/kmeans.h"
#include "workloads/seidel.h"
#include "workloads/synthetic.h"

namespace aftermath {
namespace workloads {
namespace {

TEST(Seidel, TaskAndRegionCounts)
{
    SeidelParams params;
    params.blocksX = 8;
    params.blocksY = 4;
    params.blockDim = 16;
    params.iterations = 3;
    runtime::TaskSet set = buildSeidel(params);
    std::string err;
    ASSERT_TRUE(set.validate(err)) << err;
    // 32 inits + 32 * 3 sweeps.
    EXPECT_EQ(set.tasks.size(), 32u + 96u);
    // One region per block version (iterations + 1).
    EXPECT_EQ(set.regions.size(), 32u * 4u);
    EXPECT_EQ(set.types.size(), 2u);
}

TEST(Seidel, DependenceStructureIsWavefront)
{
    SeidelParams params;
    params.blocksX = 4;
    params.blocksY = 4;
    params.blockDim = 8;
    params.iterations = 2;
    runtime::TaskSet set = buildSeidel(params);

    auto task_id = [&](std::uint32_t t, std::uint32_t i,
                       std::uint32_t j) {
        return static_cast<std::uint64_t>(t) * 16 + j * 4 + i;
    };
    // Corner block (0,0) sweep 1: depends on its own init plus the
    // right/down neighbours' inits (their previous-sweep boundaries).
    const runtime::SimTask &corner = set.tasks[task_id(1, 0, 0)];
    std::set<std::uint64_t> corner_deps(corner.deps.begin(),
                                        corner.deps.end());
    EXPECT_EQ(corner_deps,
              (std::set<std::uint64_t>{task_id(0, 0, 0), task_id(0, 1, 0),
                                       task_id(0, 0, 1)}));
    // Interior block (2,1) sweep 2: 5 deps (self prev, left/up current,
    // right/down previous).
    const runtime::SimTask &mid = set.tasks[task_id(2, 2, 1)];
    std::set<std::uint64_t> deps(mid.deps.begin(), mid.deps.end());
    EXPECT_EQ(deps.size(), 5u);
    EXPECT_TRUE(deps.count(task_id(1, 2, 1)));
    EXPECT_TRUE(deps.count(task_id(2, 1, 1)));
    EXPECT_TRUE(deps.count(task_id(2, 2, 0)));
    EXPECT_TRUE(deps.count(task_id(1, 3, 1)));
    EXPECT_TRUE(deps.count(task_id(1, 2, 2)));
}

TEST(Seidel, OnlyVersionZeroIsFresh)
{
    SeidelParams params;
    params.blocksX = 2;
    params.blocksY = 2;
    params.blockDim = 8;
    params.iterations = 2;
    runtime::TaskSet set = buildSeidel(params);
    for (const runtime::SimRegion &region : set.regions) {
        bool v0 = region.id < 4;
        EXPECT_EQ(region.fresh, v0) << "region " << region.id;
    }
}

TEST(Seidel, NumaOptimizedAssignsHomes)
{
    SeidelParams params;
    params.blocksX = 4;
    params.blocksY = 4;
    params.blockDim = 8;
    params.iterations = 1;
    params.numaOptimized = true;
    params.numNodes = 4;
    runtime::TaskSet set = buildSeidel(params);
    std::set<NodeId> homes;
    for (const runtime::SimTask &task : set.tasks) {
        ASSERT_NE(task.homeNode, kInvalidNode);
        homes.insert(task.homeNode);
    }
    EXPECT_EQ(homes.size(), 4u); // All nodes used.

    params.numaOptimized = false;
    runtime::TaskSet plain = buildSeidel(params);
    EXPECT_EQ(plain.tasks[0].homeNode, kInvalidNode);
}

TEST(Kmeans, TaskCountsMatchTreeStructure)
{
    KmeansParams params;
    params.numPoints = 8000;
    params.pointsPerBlock = 1000; // m = 8.
    params.iterations = 3;
    runtime::TaskSet set = buildKmeans(params);
    std::string err;
    ASSERT_TRUE(set.validate(err)) << err;

    // 8 inputs; per iteration: 8 distance + 7 reduce; propagation
    // (2*8 - 1 = 15 nodes) for all but the last iteration.
    std::size_t expect = 8 + 3 * (8 + 7) + 2 * 15;
    EXPECT_EQ(set.tasks.size(), expect);
    EXPECT_EQ(set.types.size(), 4u);
}

TEST(Kmeans, ChurnDecaysOverIterations)
{
    KmeansParams params;
    params.numPoints = 4000;
    params.pointsPerBlock = 1000;
    params.iterations = 6;
    runtime::TaskSet set = buildKmeans(params);

    // Average mispredictions of distance tasks per iteration must fall.
    std::vector<double> per_iter(params.iterations, 0.0);
    std::vector<int> counts(params.iterations, 0);
    std::uint32_t iter = 0;
    for (const runtime::SimTask &task : set.tasks) {
        if (task.type != kKmeansDistanceType)
            continue;
        per_iter[iter / 4] += static_cast<double>(task.extraMispredicts);
        counts[iter / 4]++;
        iter++;
    }
    for (std::uint32_t i = 0; i < params.iterations; i++)
        per_iter[i] /= counts[i];
    EXPECT_GT(per_iter[0], per_iter[2]);
    EXPECT_GT(per_iter[2], per_iter[5]);
    EXPECT_GT(per_iter[5], 0.0);
}

TEST(Kmeans, BranchFixCollapsesMispredictions)
{
    KmeansParams params;
    params.numPoints = 4000;
    params.pointsPerBlock = 1000;
    params.iterations = 2;
    runtime::TaskSet plain = buildKmeans(params);
    params.branchOptimized = true;
    runtime::TaskSet fixed = buildKmeans(params);

    auto max_mispred = [](const runtime::TaskSet &set) {
        std::uint64_t best = 0;
        for (const runtime::SimTask &task : set.tasks)
            best = std::max(best, task.extraMispredicts);
        return best;
    };
    EXPECT_GT(max_mispred(plain), 10 * max_mispred(fixed));
}

TEST(Kmeans, DistanceTasksReadPointsAndCenters)
{
    KmeansParams params;
    params.numPoints = 2000;
    params.pointsPerBlock = 1000;
    params.iterations = 2;
    runtime::TaskSet set = buildKmeans(params);
    for (const runtime::SimTask &task : set.tasks) {
        if (task.type != kKmeansDistanceType)
            continue;
        ASSERT_EQ(task.reads.size(), 2u);
        EXPECT_EQ(task.writes.size(), 1u);
        // Point block is the big read.
        EXPECT_EQ(task.reads[0].bytes,
                  params.pointsPerBlock * params.dims * sizeof(double));
        EXPECT_FALSE(task.deps.empty());
    }
}

TEST(Kmeans, DeterministicForSeed)
{
    KmeansParams params;
    params.numPoints = 4000;
    params.pointsPerBlock = 500;
    params.iterations = 2;
    params.seed = 5;
    runtime::TaskSet a = buildKmeans(params);
    runtime::TaskSet b = buildKmeans(params);
    ASSERT_EQ(a.tasks.size(), b.tasks.size());
    for (std::size_t i = 0; i < a.tasks.size(); i++)
        EXPECT_EQ(a.tasks[i].extraMispredicts,
                  b.tasks[i].extraMispredicts);
}

TEST(Synthetic, ChainStructure)
{
    runtime::TaskSet set = buildChain(10);
    std::string err;
    ASSERT_TRUE(set.validate(err)) << err;
    EXPECT_EQ(set.tasks.size(), 10u);
    EXPECT_TRUE(set.tasks[0].deps.empty());
    for (std::size_t i = 1; i < 10; i++)
        EXPECT_EQ(set.tasks[i].deps,
                  (std::vector<std::uint64_t>{i - 1}));
    // Every task has a region and reads its producers'.
    EXPECT_EQ(set.regions.size(), 10u);
    EXPECT_EQ(set.tasks[5].reads.size(), 1u);
}

TEST(Synthetic, ForkJoinStructure)
{
    runtime::TaskSet set = buildForkJoin(3, 4);
    std::string err;
    ASSERT_TRUE(set.validate(err)) << err;
    EXPECT_EQ(set.tasks.size(), 3u * 5u);
    // The join of phase 0 is task 4 and has 4 deps.
    EXPECT_EQ(set.tasks[4].deps.size(), 4u);
    // Phase-1 workers depend on the phase-0 join.
    EXPECT_EQ(set.tasks[5].deps, (std::vector<std::uint64_t>{4}));
}

TEST(Synthetic, RandomDagIsAcyclicByConstruction)
{
    runtime::TaskSet set = buildRandomDag(200, 6, 3);
    std::string err;
    ASSERT_TRUE(set.validate(err)) << err;
    for (const runtime::SimTask &task : set.tasks) {
        for (std::uint64_t dep : task.deps)
            EXPECT_LT(dep, task.id); // Edges only point backwards.
    }
}

TEST(Validate, CatchesBrokenSets)
{
    runtime::TaskSet set = buildChain(3);
    set.tasks[2].id = 7; // Non-dense id.
    std::string err;
    EXPECT_FALSE(set.validate(err));

    runtime::TaskSet self_dep = buildChain(3);
    self_dep.tasks[1].deps.push_back(1);
    EXPECT_FALSE(self_dep.validate(err));
    EXPECT_NE(err.find("itself"), std::string::npos);

    runtime::TaskSet bad_region = buildChain(2);
    bad_region.tasks[0].reads.push_back({99, 10});
    EXPECT_FALSE(bad_region.validate(err));
}

} // namespace
} // namespace workloads
} // namespace aftermath
