#include "graph/critical_path.h"

#include <algorithm>
#include <queue>

namespace aftermath {
namespace graph {

CriticalPath
computeCriticalPath(const TaskGraph &graph, const trace::Trace &trace)
{
    CriticalPath result;
    NodeIndex n = graph.numNodes();
    if (n == 0) {
        result.acyclic = true;
        return result;
    }

    std::vector<TimeStamp> weight(n, 0);
    for (NodeIndex v = 0; v < n; v++) {
        const trace::TaskInstance *inst =
            trace.taskInstance(graph.taskOf(v));
        weight[v] = inst ? inst->duration() : 0;
    }

    // Longest weighted path via Kahn topological order.
    std::vector<TimeStamp> dist(n, 0);
    std::vector<NodeIndex> best_pred(n, kInvalidNodeIndex);
    std::vector<std::uint32_t> indegree(n, 0);
    for (NodeIndex v = 0; v < n; v++)
        indegree[v] = static_cast<std::uint32_t>(
            graph.predecessors(v).size());

    std::queue<NodeIndex> ready;
    for (NodeIndex v = 0; v < n; v++) {
        if (indegree[v] == 0) {
            dist[v] = weight[v];
            ready.push(v);
        }
    }

    NodeIndex processed = 0;
    while (!ready.empty()) {
        NodeIndex v = ready.front();
        ready.pop();
        processed++;
        for (NodeIndex s : graph.successors(v)) {
            if (dist[v] + weight[s] > dist[s]) {
                dist[s] = dist[v] + weight[s];
                best_pred[s] = v;
            }
            if (--indegree[s] == 0)
                ready.push(s);
        }
    }
    if (processed != n)
        return result; // Cycle.

    result.acyclic = true;
    NodeIndex tail = 0;
    for (NodeIndex v = 1; v < n; v++) {
        if (dist[v] > dist[tail])
            tail = v;
    }
    result.length = dist[tail];

    // Walk the predecessor chain back to a root.
    std::vector<TaskInstanceId> reversed;
    for (NodeIndex v = tail; v != kInvalidNodeIndex; v = best_pred[v])
        reversed.push_back(graph.taskOf(v));
    result.tasks.assign(reversed.rbegin(), reversed.rend());
    return result;
}

} // namespace graph
} // namespace aftermath
