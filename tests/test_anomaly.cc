/**
 * @file
 * Dedicated unit tests of the anomaly scanner (stats/anomaly.h) on
 * hand-built traces: ranking determinism and ordering guarantees,
 * empty-trace and single-CPU edges, the per-kind cap, and the
 * statistical thresholds (minimum sample counts, zero variance).
 * Smoke-level detection coverage lives in test_extensions.cc.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "stats/anomaly.h"
#include "trace/state.h"

namespace aftermath {
namespace {

constexpr std::uint32_t kExec =
    static_cast<std::uint32_t>(trace::CoreState::TaskExec);
constexpr std::uint32_t kIdle =
    static_cast<std::uint32_t>(trace::CoreState::Idle);

/** Rank used for ordering checks: idle phases first, bursts last. */
int
kindRank(stats::AnomalyKind kind)
{
    switch (kind) {
      case stats::AnomalyKind::IdlePhase:
        return 0;
      case stats::AnomalyKind::DurationOutlier:
        return 1;
      case stats::AnomalyKind::CounterBurst:
        return 2;
    }
    return 3;
}

TEST(AnomalyScan, EmptyTraceYieldsNoFindings)
{
    trace::Trace tr;
    tr.setTopology(trace::MachineTopology::uniform(1, 2));
    std::string err;
    ASSERT_TRUE(tr.finalize(err)) << err;
    EXPECT_TRUE(tr.span().empty());
    EXPECT_TRUE(stats::scanForAnomalies(tr).empty());
}

TEST(AnomalyScan, SingleCpuIdlePhaseIsDetected)
{
    // With one CPU the idle threshold is 0.5 workers: the lone CPU
    // going idle must still register as a full-severity phase.
    trace::Trace tr;
    tr.setTopology(trace::MachineTopology::uniform(1, 1));
    tr.cpu(0).addState({{0, 400}, kExec, kInvalidTaskInstance});
    tr.cpu(0).addState({{400, 600}, kIdle, kInvalidTaskInstance});
    tr.cpu(0).addState({{600, 1000}, kExec, kInvalidTaskInstance});
    std::string err;
    ASSERT_TRUE(tr.finalize(err)) << err;

    auto findings = stats::scanForAnomalies(tr);
    ASSERT_FALSE(findings.empty());
    EXPECT_EQ(findings.front().kind, stats::AnomalyKind::IdlePhase);
    EXPECT_GT(findings.front().severity, 0.9);
}

/** A trace that triggers all three kinds at several severities. */
trace::Trace
buildBusyTrace()
{
    trace::Trace tr;
    tr.setTopology(trace::MachineTopology::uniform(1, 2));
    tr.addTaskType({0x1, "work"});
    tr.addCounterDescription({0, "misses"});

    // Tasks: a tight cluster around 100 cycles with two outliers of
    // different magnitude (ids 11 and 23). The baseline population is
    // large so both outliers clear the z-score threshold even though
    // they inflate the type's own variance.
    TimeStamp t = 0;
    for (TaskInstanceId id = 0; id < 100; id++) {
        TimeStamp d = 100 + (id % 3);
        if (id == 11)
            d = 600;
        if (id == 23)
            d = 900;
        tr.addTaskInstance({id, 0x1, 0, {t, t + d}});
        tr.cpu(0).addState({{t, t + d}, kExec, id});
        t += d;
    }
    const TimeStamp end = t;

    // CPU 1: executes, then idles through the middle (two disjoint
    // idle phases of different depth relative to the span).
    tr.cpu(1).addState({{0, end / 4}, kExec, kInvalidTaskInstance});
    tr.cpu(1).addState(
        {{end / 4, end / 2}, kIdle, kInvalidTaskInstance});
    tr.cpu(1).addState(
        {{end / 2, 3 * end / 4}, kExec, kInvalidTaskInstance});
    tr.cpu(1).addState({{3 * end / 4, end}, kIdle, kInvalidTaskInstance});

    // Counter on CPU 1: steady rate with two bursts, the second
    // stronger than the first.
    std::int64_t v = 0;
    for (TimeStamp ct = 0; ct <= end; ct += end / 100) {
        std::int64_t dv = static_cast<std::int64_t>(end / 100);
        if (ct == 20 * (end / 100))
            dv *= 10;
        if (ct == 60 * (end / 100))
            dv *= 25;
        v += dv;
        tr.cpu(1).addCounterSample(0, {ct, v});
    }
    return tr;
}

TEST(AnomalyScan, FindingsFormOneRankedListAcrossKinds)
{
    trace::Trace tr = buildBusyTrace();
    std::string err;
    ASSERT_TRUE(tr.finalize(err)) << err;

    auto findings = stats::scanForAnomalies(tr);
    ASSERT_GE(findings.size(), 3u);

    // One globally ranked list under the strict total order: severity
    // never increases, and each adjacent pair is correctly ordered.
    bool seen[3] = {false, false, false};
    double kind_top[3] = {0.0, 0.0, 0.0};
    for (std::size_t i = 0; i < findings.size(); i++) {
        int rank = kindRank(findings[i].kind);
        seen[rank] = true;
        kind_top[rank] = std::max(kind_top[rank], findings[i].severity);
        if (i == 0)
            continue;
        EXPECT_GE(findings[i - 1].severity, findings[i].severity)
            << "finding " << i;
        EXPECT_FALSE(
            stats::anomalyRankedBefore(findings[i], findings[i - 1]))
            << "finding " << i;
    }
    EXPECT_TRUE(seen[0] && seen[1] && seen[2]);

    // Severities normalize per kind: every kind's top finding scores
    // exactly 1.0, so the global head is a severity-1.0 finding and no
    // kind drowns the others.
    EXPECT_EQ(findings.front().severity, 1.0);
    EXPECT_EQ(kind_top[0], 1.0);
    EXPECT_EQ(kind_top[1], 1.0);
    EXPECT_EQ(kind_top[2], 1.0);

    // The stronger duration outlier (task 23) outranks the weaker one.
    std::vector<TaskInstanceId> outliers;
    for (const stats::Anomaly &a : findings) {
        if (a.kind == stats::AnomalyKind::DurationOutlier)
            outliers.push_back(a.task);
    }
    ASSERT_EQ(outliers.size(), 2u);
    EXPECT_EQ(outliers[0], 23u);
    EXPECT_EQ(outliers[1], 11u);
}

TEST(AnomalyScan, RankingIsDeterministic)
{
    trace::Trace tr = buildBusyTrace();
    std::string err;
    ASSERT_TRUE(tr.finalize(err)) << err;

    auto first = stats::scanForAnomalies(tr);
    auto second = stats::scanForAnomalies(tr);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); i++) {
        EXPECT_EQ(first[i].kind, second[i].kind) << i;
        EXPECT_EQ(first[i].severity, second[i].severity) << i;
        EXPECT_EQ(first[i].description, second[i].description) << i;
    }
}

TEST(AnomalyScan, MaxPerKindCapsEachKindIndependently)
{
    trace::Trace tr = buildBusyTrace();
    std::string err;
    ASSERT_TRUE(tr.finalize(err)) << err;

    stats::AnomalyScanOptions options;
    options.maxPerKind = 1;
    auto findings = stats::scanForAnomalies(tr, options);

    std::size_t counts[3] = {0, 0, 0};
    for (const stats::Anomaly &a : findings)
        counts[kindRank(a.kind)]++;
    EXPECT_LE(counts[0], 1u);
    EXPECT_LE(counts[1], 1u);
    EXPECT_LE(counts[2], 1u);
    // The cap keeps the most severe finding of each kind: the big
    // outlier survives, the small one is dropped.
    for (const stats::Anomaly &a : findings) {
        if (a.kind == stats::AnomalyKind::DurationOutlier) {
            EXPECT_EQ(a.task, 23u);
        }
    }
}

TEST(AnomalyScan, FewerThanTenTasksSkipsDurationOutliers)
{
    // 9 samples of one type — even a gross outlier must be ignored,
    // the z-score would be meaningless.
    trace::Trace tr;
    tr.setTopology(trace::MachineTopology::uniform(1, 1));
    tr.addTaskType({0x1, "work"});
    TimeStamp t = 0;
    for (TaskInstanceId id = 0; id < 9; id++) {
        TimeStamp d = (id == 4) ? 5'000 : 100 + (id % 3);
        tr.addTaskInstance({id, 0x1, 0, {t, t + d}});
        tr.cpu(0).addState({{t, t + d}, kExec, id});
        t += d;
    }
    std::string err;
    ASSERT_TRUE(tr.finalize(err)) << err;

    for (const stats::Anomaly &a : stats::scanForAnomalies(tr))
        EXPECT_NE(a.kind, stats::AnomalyKind::DurationOutlier);
}

TEST(AnomalyScan, ZeroVarianceDurationsYieldNoOutliers)
{
    // 20 identical durations: sd == 0, nothing can be an outlier.
    trace::Trace tr;
    tr.setTopology(trace::MachineTopology::uniform(1, 1));
    tr.addTaskType({0x1, "work"});
    TimeStamp t = 0;
    for (TaskInstanceId id = 0; id < 20; id++) {
        tr.addTaskInstance({id, 0x1, 0, {t, t + 100}});
        tr.cpu(0).addState({{t, t + 100}, kExec, id});
        t += 100;
    }
    std::string err;
    ASSERT_TRUE(tr.finalize(err)) << err;

    for (const stats::Anomaly &a : stats::scanForAnomalies(tr))
        EXPECT_NE(a.kind, stats::AnomalyKind::DurationOutlier);
}

TEST(AnomalyScan, FewerThanThreeCounterSamplesSkipsBursts)
{
    trace::Trace tr;
    tr.setTopology(trace::MachineTopology::uniform(1, 1));
    tr.addCounterDescription({0, "misses"});
    // Two samples encoding an enormous rate jump: still below the
    // minimum sample count, so no burst may be reported.
    tr.cpu(0).addCounterSample(0, {0, 0});
    tr.cpu(0).addCounterSample(0, {1'000, 1'000'000});
    tr.cpu(0).addState({{0, 1'000}, kExec, kInvalidTaskInstance});
    std::string err;
    ASSERT_TRUE(tr.finalize(err)) << err;

    for (const stats::Anomaly &a : stats::scanForAnomalies(tr))
        EXPECT_NE(a.kind, stats::AnomalyKind::CounterBurst);
}

TEST(AnomalyScan, BurstReportsCpuCounterAndInterval)
{
    trace::Trace tr;
    tr.setTopology(trace::MachineTopology::uniform(1, 2));
    tr.addCounterDescription({7, "stalls"});
    std::int64_t v = 0;
    for (TimeStamp t = 0; t <= 1'000; t += 10) {
        v += (t == 700) ? 200 : 10;
        tr.cpu(1).addCounterSample(7, {t, v});
    }
    for (CpuId c = 0; c < 2; c++)
        tr.cpu(c).addState({{0, 1'000}, kExec, kInvalidTaskInstance});
    std::string err;
    ASSERT_TRUE(tr.finalize(err)) << err;

    bool found = false;
    for (const stats::Anomaly &a : stats::scanForAnomalies(tr)) {
        if (a.kind != stats::AnomalyKind::CounterBurst)
            continue;
        found = true;
        EXPECT_EQ(a.cpu, 1u);
        EXPECT_EQ(a.counter, 7u);
        EXPECT_TRUE(a.interval.overlaps({690, 701}));
        EXPECT_NE(a.description.find("stalls"), std::string::npos);
    }
    EXPECT_TRUE(found);
}

// Regression: a resetting counter must not manufacture bursts. A naive
// back-minus-front total delta shrinks across each reset, deflating the
// mean rate until perfectly steady segments look like 4x bursts.
TEST(AnomalyScan, CounterResetDoesNotManufactureBursts)
{
    trace::Trace tr;
    tr.setTopology(trace::MachineTopology::uniform(1, 1));
    tr.addCounterDescription({0, "misses"});
    tr.cpu(0).addState({{0, 1'000}, kExec, kInvalidTaskInstance});

    // Perfectly constant rate (10 per 10 cycles) with three resets to
    // zero. No window is ever faster than the true rate.
    std::int64_t v = 0;
    for (TimeStamp t = 0; t <= 1'000; t += 10) {
        tr.cpu(0).addCounterSample(0, {t, v});
        v += 10;
        if (t == 240 || t == 490 || t == 740)
            v = 0;
    }
    std::string err;
    ASSERT_TRUE(tr.finalize(err)) << err;

    for (const stats::Anomaly &a : stats::scanForAnomalies(tr))
        EXPECT_NE(a.kind, stats::AnomalyKind::CounterBurst)
            << a.description;
}

// Regression: idle phases at the trace edges are widened by half a
// sub-interval on each side; without a saturating clamp the widening
// wraps below zero at the trace start (unsigned timestamps) and spills
// past the trace end.
TEST(AnomalyScan, IdlePhaseIntervalsStayWithinTraceSpan)
{
    trace::Trace tr;
    tr.setTopology(trace::MachineTopology::uniform(1, 1));
    tr.cpu(0).addState({{0, 100}, kIdle, kInvalidTaskInstance});
    tr.cpu(0).addState({{100, 900}, kExec, kInvalidTaskInstance});
    tr.cpu(0).addState({{900, 1'000}, kIdle, kInvalidTaskInstance});
    std::string err;
    ASSERT_TRUE(tr.finalize(err)) << err;

    auto findings = stats::scanForAnomalies(tr);
    std::size_t phases = 0;
    for (const stats::Anomaly &a : findings) {
        if (a.kind != stats::AnomalyKind::IdlePhase)
            continue;
        phases++;
        EXPECT_GE(a.interval.start, tr.span().start) << a.description;
        EXPECT_LE(a.interval.end, tr.span().end) << a.description;
    }
    // Both edge phases must be reported — clamped, not dropped.
    EXPECT_EQ(phases, 2u);
}

// Regression: duration variance must survive large cycle counts. The
// one-pass sum2/n - mean^2 form cancels catastrophically once durations
// reach ~2^52 cycles (sum2 needs ~104 bits), flattening the jitter to
// sd == 0 and silently suppressing every outlier; Welford accumulation
// keeps the small deviations exact.
TEST(AnomalyScan, LargeDurationsStillDetectOutliers)
{
    trace::Trace tr;
    tr.setTopology(trace::MachineTopology::uniform(1, 1));
    tr.addTaskType({0x1, "work"});
    TimeStamp t = 0;
    for (TaskInstanceId id = 0; id < 12; id++) {
        TimeStamp d = (TimeStamp{1} << 52) + (id % 3);
        if (id == 7)
            d += 100'000;
        tr.addTaskInstance({id, 0x1, 0, {t, t + d}});
        tr.cpu(0).addState({{t, t + d}, kExec, id});
        t += d;
    }
    std::string err;
    ASSERT_TRUE(tr.finalize(err)) << err;

    bool found = false;
    for (const stats::Anomaly &a : stats::scanForAnomalies(tr)) {
        if (a.kind != stats::AnomalyKind::DurationOutlier)
            continue;
        found = true;
        EXPECT_EQ(a.task, 7u) << a.description;
    }
    EXPECT_TRUE(found) << "outlier lost to catastrophic cancellation";
}

} // namespace
} // namespace aftermath
