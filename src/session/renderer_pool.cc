#include "session/renderer_pool.h"

#include <utility>

namespace aftermath {
namespace session {

void
RendererPool::Lease::release()
{
    if (!renderer_)
        return;
    pool_->checkin(trace_.get(), std::move(renderer_));
    pool_.reset();
    trace_.reset();
}

void
RendererPool::setTrace(std::shared_ptr<const trace::Trace> trace)
{
    // Destroy the invalidated renderers outside the lock: concurrent
    // checkouts should not wait on cache teardown.
    std::vector<std::unique_ptr<render::TimelineRenderer>> stale;
    {
        base::MutexLock lock(mutex_);
        if (trace.get() == current_.get()) {
            current_ = std::move(trace); // Same trace, maybe new owner.
            return;
        }
        stale.swap(idle_);
        counters_.dropped += stale.size();
        current_ = std::move(trace);
    }
}

RendererPool::Lease
RendererPool::checkout(const std::shared_ptr<const trace::Trace> &trace)
{
    {
        base::MutexLock lock(mutex_);
        if (trace.get() == current_.get() && !idle_.empty()) {
            std::unique_ptr<render::TimelineRenderer> renderer =
                std::move(idle_.back());
            idle_.pop_back();
            counters_.reused++;
            return Lease(shared_from_this(), trace, std::move(renderer));
        }
        counters_.created++;
    }
    // Construction scans the trace's task-type table — outside the
    // lock, so concurrent cold checkouts build in parallel.
    return Lease(shared_from_this(), trace,
                 std::make_unique<render::TimelineRenderer>(*trace));
}

void
RendererPool::checkin(const trace::Trace *trace,
                      std::unique_ptr<render::TimelineRenderer> renderer)
{
    // Destroy a stale/surplus renderer outside the lock (doomed dies
    // after the locked scope), so its hash-map-heavy teardown never
    // serializes concurrent checkouts.
    std::unique_ptr<render::TimelineRenderer> doomed;
    {
        base::MutexLock lock(mutex_);
        counters_.returned++;
        if (trace == current_.get() && idle_.size() < capacity_) {
            idle_.push_back(std::move(renderer));
            return;
        }
        counters_.dropped++;
        doomed = std::move(renderer);
    }
}

void
RendererPool::setCapacity(std::size_t capacity)
{
    std::vector<std::unique_ptr<render::TimelineRenderer>> evicted;
    base::MutexLock lock(mutex_);
    capacity_ = capacity;
    while (idle_.size() > capacity_) {
        evicted.push_back(std::move(idle_.back()));
        idle_.pop_back();
        counters_.dropped++;
    }
}

std::size_t
RendererPool::capacity() const
{
    base::MutexLock lock(mutex_);
    return capacity_;
}

std::size_t
RendererPool::idleCount() const
{
    base::MutexLock lock(mutex_);
    return idle_.size();
}

RendererPool::Counters
RendererPool::counters() const
{
    base::MutexLock lock(mutex_);
    return counters_;
}

} // namespace session
} // namespace aftermath
