/**
 * @file
 * Asynchronous query plane: cold parallel interval statistics and
 * cancellation latency.
 *
 * The paper's statistical views aggregate a user-selected interval
 * across all CPUs (section II-A); on a many-core trace the first (cold)
 * aggregation is a full scan, exactly the stall the asynchronous query
 * plane moves off the interaction path. This bench measures the cold
 * interval-statistics scan of the 192-CPU seidel trace at 1/2/4/8
 * workers through Session::submit()'s parallel executor (per-CPU and
 * task-chunk partial sums merged at the end), verifies the parallel
 * result is bit-identical to the serial one, requires — on >= 4
 * hardware threads — a >= 2x speedup at >= 4 workers, and measures how
 * fast an in-flight query reacts to cancel() and to a view-generation
 * bump. Results are emitted as JSON lines with a "workers" field
 * (BENCH_sec7_async_queries.json) for the perf trajectory.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common.h"

using namespace aftermath;

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Wall time of one cold interval-statistics query, seconds. */
double
timeColdStats(const trace::Trace &tr, unsigned workers,
              stats::IntervalStats *out = nullptr)
{
    Session session = Session::view(tr);
    session.setConcurrency({workers});
    session.queryEngine()->pool(); // Spin workers up outside the timing.
    auto start = Clock::now();
    const stats::IntervalStats &stats = session.intervalStats();
    double seconds = secondsSince(start);
    if (out)
        *out = stats;
    return seconds;
}

/** Average cold-query time over @p reps fresh sessions, seconds. */
double
averageColdStats(const trace::Trace &tr, unsigned workers, int reps)
{
    double total = 0.0;
    for (int r = 0; r < reps; r++)
        total += timeColdStats(tr, workers);
    return total / reps;
}

} // namespace

int
main()
{
    bench::banner("Section VII (this repo)",
                  "async query plane: parallel cold interval statistics "
                  "+ cancellation latency");
    bench::JsonLines json("sec7_async_queries");

    runtime::RunResult result = bench::runSeidel(false);
    if (!result.ok) {
        std::fprintf(stderr, "simulation failed: %s\n",
                     result.error.c_str());
        return 1;
    }
    const trace::Trace &tr = result.trace;
    bench::row("trace",
               strFormat("%u cpus, %zu task instances", tr.numCpus(),
                         tr.taskInstances().size()));

    // Calibrate repetitions so each timing covers >= ~50 ms of work.
    double probe = timeColdStats(tr, 1);
    int reps = static_cast<int>(
        std::clamp(0.05 / std::max(probe, 1e-6), 3.0, 50.0));

    double serial_s = averageColdStats(tr, 1, reps);
    json.add("cold_stats_w1", serial_s, "s", 1);
    bench::row("serial cold interval stats",
               strFormat("%.5f s (avg of %d)", serial_s, reps));

    unsigned hw = std::thread::hardware_concurrency();
    double speedup_at_4plus = 0.0;
    for (unsigned workers : {2u, 4u, 8u}) {
        double parallel_s = averageColdStats(tr, workers, reps);
        double speedup = parallel_s > 0 ? serial_s / parallel_s : 0;
        json.add(strFormat("cold_stats_w%u", workers), parallel_s, "s",
                 static_cast<int>(workers));
        json.add(strFormat("speedup_w%u", workers), speedup, "x",
                 static_cast<int>(workers));
        bench::row(strFormat("%u workers", workers),
                   strFormat("%.5f s (%.2fx)", parallel_s, speedup));
        if (workers >= 4)
            speedup_at_4plus = std::max(speedup_at_4plus, speedup);
    }

    // Correctness: the parallel merge must be bit-identical to the
    // serial scan — same per-state map, same task counts.
    stats::IntervalStats serial_stats, parallel_stats;
    timeColdStats(tr, 1, &serial_stats);
    timeColdStats(tr, std::max(4u, std::min(hw, 8u)), &parallel_stats);
    bool identical =
        serial_stats.interval == parallel_stats.interval &&
        serial_stats.timeInState == parallel_stats.timeInState &&
        serial_stats.tasksOverlapping == parallel_stats.tasksOverlapping &&
        serial_stats.tasksStarted == parallel_stats.tasksStarted;

    // Cancellation latency: how long a running cold query needs to
    // notice cancel() and complete as Cancelled. Distinct intervals
    // defeat the memo so every submission really scans.
    TimeInterval span = tr.span();
    double cancel_total = 0.0;
    int cancel_samples = 0;
    for (int r = 0; r < reps; r++) {
        Session session = Session::view(tr);
        session.setConcurrency({2});
        session.queryEngine()->pool();
        auto ticket = session.submit(session::IntervalStatsQuery{
            TimeInterval{span.start, span.end - 1 - r}});
        while (ticket.status() == session::QueryStatus::Pending)
            std::this_thread::yield();
        if (ticket.status() != session::QueryStatus::Running)
            continue; // Finished before we could cancel; retry.
        auto start = Clock::now();
        ticket.cancel();
        session::QueryStatus final_status = ticket.wait();
        // Cancellation is cooperative: a scan in its final chunk may
        // legitimately race to Done. Only actual cancellations are
        // latency samples.
        if (final_status == session::QueryStatus::Cancelled) {
            cancel_total += secondsSince(start);
            cancel_samples++;
        }
    }
    double cancel_latency =
        cancel_samples > 0 ? cancel_total / cancel_samples : 0.0;
    json.add("cancel_latency", cancel_latency, "s", 2);
    json.add("cancel_samples", cancel_samples);

    // Generation semantics: a view change cancels the stale in-flight
    // query without an explicit cancel().
    bool generation_cancels = true;
    {
        Session session = Session::view(tr);
        session.setConcurrency({2});
        session.queryEngine()->pool();
        auto stale = session.submit(session::IntervalStatsQuery{
            TimeInterval{span.start, span.end - 7}});
        session.setView({span.start, span.start + span.duration() / 4});
        session::QueryStatus status = stale.wait();
        // Fast machines may finish the scan before the bump lands;
        // only a stale *completion under the old view* would be wrong.
        generation_cancels = status == session::QueryStatus::Cancelled ||
                             status == session::QueryStatus::Done;
        auto fresh = session.submit(session::IntervalStatsQuery{});
        generation_cancels =
            generation_cancels &&
            fresh.wait() == session::QueryStatus::Done;
    }

    json.add("identical", identical ? 1 : 0);
    json.add("generation_cancels", generation_cancels ? 1 : 0);
    json.add("hardware_threads", hw);

    std::printf("\n");
    bench::row("parallel == serial (bit-identical)",
               identical ? "yes" : "NO");
    bench::row("cancel latency",
               strFormat("%.6f s (avg of %d running cancels)",
                         cancel_latency, cancel_samples));
    bench::row("generation bump cancels stale queries",
               generation_cancels ? "yes" : "NO");
    bool enough_hw = hw >= 4;
    if (enough_hw) {
        bench::row("speedup at >= 4 workers",
                   strFormat("%.2fx (required: >= 2x)", speedup_at_4plus));
    } else {
        bench::row("speedup at >= 4 workers",
                   strFormat("%.2fx (not required: only %u hardware "
                             "thread%s)",
                             speedup_at_4plus, hw, hw == 1 ? "" : "s"));
    }
    bench::row("json", json.ok() ? json.path().c_str() : "WRITE FAILED");

    bool ok = identical && generation_cancels &&
              (!enough_hw || speedup_at_4plus >= 2.0);
    return ok ? 0 : 1;
}
