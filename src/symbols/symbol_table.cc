#include "symbols/symbol_table.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "base/string_util.h"

namespace aftermath {
namespace symbols {

namespace {

bool
isFunctionKind(char kind)
{
    return kind == 'T' || kind == 't' || kind == 'W' || kind == 'w';
}

} // namespace

void
SymbolTable::add(const Symbol &symbol)
{
    symbols_.push_back(symbol);
    sorted_ = false;
}

SymbolTable
SymbolTable::parseNm(std::istream &is)
{
    SymbolTable table;
    std::string line;
    while (std::getline(is, line)) {
        line = strTrim(line);
        if (line.empty())
            continue;
        // "ADDRESS TYPE NAME"; undefined symbols lack the address field.
        std::istringstream fields(line);
        std::string addr_text, kind_text, name;
        if (!(fields >> addr_text >> kind_text))
            continue;
        if (kind_text.size() != 1)
            continue;
        if (!(fields >> name) || name.empty())
            continue;
        char *end = nullptr;
        std::uint64_t address = std::strtoull(addr_text.c_str(), &end, 16);
        if (end == addr_text.c_str() || *end != '\0')
            continue;
        table.add({address, kind_text[0], name});
    }
    return table;
}

SymbolTable
SymbolTable::parseNmString(const std::string &text)
{
    std::istringstream is(text);
    return parseNm(is);
}

void
SymbolTable::ensureSorted() const
{
    if (sorted_)
        return;
    std::stable_sort(symbols_.begin(), symbols_.end(),
                     [](const Symbol &a, const Symbol &b) {
                         return a.address < b.address;
                     });
    sorted_ = true;
}

const Symbol *
SymbolTable::lookup(std::uint64_t address) const
{
    ensureSorted();
    auto it = std::upper_bound(
        symbols_.begin(), symbols_.end(), address,
        [](std::uint64_t addr, const Symbol &s) { return addr < s.address; });
    // Walk back to the nearest preceding function symbol.
    while (it != symbols_.begin()) {
        --it;
        if (isFunctionKind(it->kind))
            return &*it;
    }
    return nullptr;
}

const Symbol *
SymbolTable::exact(std::uint64_t address) const
{
    ensureSorted();
    auto it = std::lower_bound(
        symbols_.begin(), symbols_.end(), address,
        [](const Symbol &s, std::uint64_t addr) { return s.address < addr; });
    if (it != symbols_.end() && it->address == address)
        return &*it;
    return nullptr;
}

} // namespace symbols
} // namespace aftermath
