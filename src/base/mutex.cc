#include "base/mutex.h"

#include <vector>

#include "base/logging.h"

// The CMake option AFTERMATH_LOCK_RANK_CHECKS compiles the checker in
// or out for the whole library; this translation unit is the only one
// that looks at the macro, so mixed-definition ODR hazards cannot
// arise (lock()/unlock() are deliberately out of line).
#ifndef AFTERMATH_LOCK_RANK_CHECKS
#define AFTERMATH_LOCK_RANK_CHECKS 0
#endif

namespace aftermath {
namespace base {

#if AFTERMATH_LOCK_RANK_CHECKS

namespace {

/** One ranked lock the current thread holds. */
struct HeldLock
{
    const Mutex *mutex;
    const char *file; ///< Acquisition site (from __builtin_FILE()).
    int line;
};

/**
 * The calling thread's ranked-lock stack. Unranked mutexes never touch
 * it, so the common leaf locks stay exactly as cheap as std::mutex.
 */
thread_local std::vector<HeldLock> t_held;

/**
 * The order check of one blocking acquisition, run *before* blocking so
 * a would-be deadlock aborts with a report instead of hanging. Unlock
 * order is unconstrained (scopes may interleave), so the new rank is
 * checked against every held lock, not just the most recent.
 */
void
checkRankOrder(const Mutex &mutex, const char *file, int line)
{
    for (const HeldLock &held : t_held) {
        if (held.mutex->rank() < mutex.rank())
            continue;
        panic("lock-rank violation: acquiring \"%s\" (rank %d) at "
              "%s:%d while holding \"%s\" (rank %d) acquired at %s:%d"
              " — see the lockrank registry in base/mutex.h",
              mutex.name(), mutex.rank(), file, line,
              held.mutex->name(), held.mutex->rank(), held.file,
              held.line);
    }
}

void
recordAcquired(const Mutex &mutex, const char *file, int line)
{
    t_held.push_back(HeldLock{&mutex, file, line});
}

void
recordReleased(const Mutex &mutex)
{
    for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
        if (it->mutex == &mutex) {
            t_held.erase(std::next(it).base());
            return;
        }
    }
    panic("lock-rank bookkeeping: releasing \"%s\" (rank %d), which "
          "this thread does not hold",
          mutex.name(), mutex.rank());
}

} // namespace

void
Mutex::lock(const char *file, int line)
{
    if (rank_ != lockrank::kNone)
        checkRankOrder(*this, file, line);
    impl_.lock();
    if (rank_ != lockrank::kNone)
        recordAcquired(*this, file, line);
}

void
Mutex::unlock()
{
    if (rank_ != lockrank::kNone)
        recordReleased(*this);
    impl_.unlock();
}

bool
Mutex::tryLock(const char *file, int line)
{
    if (!impl_.try_lock())
        return false;
    // No order check: a try-lock cannot deadlock. It still counts as
    // held so later blocking acquisitions are checked against it.
    if (rank_ != lockrank::kNone)
        recordAcquired(*this, file, line);
    return true;
}

void
Mutex::noteWaitRelease()
{
    if (rank_ != lockrank::kNone)
        recordReleased(*this);
}

void
Mutex::noteWaitReacquire()
{
    // The wake-up re-acquisition is a fresh acquisition for ordering
    // purposes: a thread that waited while holding a higher-ranked
    // lock aborts here, exactly where the deadlock would form.
    if (rank_ != lockrank::kNone) {
        checkRankOrder(*this, "(condvar wake-up)", 0);
        recordAcquired(*this, "(condvar wake-up)", 0);
    }
}

bool
Mutex::rankChecksEnabled()
{
    return true;
}

std::size_t
Mutex::heldRankedLocks()
{
    return t_held.size();
}

#else // !AFTERMATH_LOCK_RANK_CHECKS

void
Mutex::lock(const char *, int)
{
    impl_.lock();
}

void
Mutex::unlock()
{
    impl_.unlock();
}

bool
Mutex::tryLock(const char *, int)
{
    return impl_.try_lock();
}

void
Mutex::noteWaitRelease()
{}

void
Mutex::noteWaitReacquire()
{}

bool
Mutex::rankChecksEnabled()
{
    return false;
}

std::size_t
Mutex::heldRankedLocks()
{
    return 0;
}

#endif // AFTERMATH_LOCK_RANK_CHECKS

void
CondVar::wait(MutexLock &lock)
{
    Mutex &mutex = lock.mutex_;
    mutex.noteWaitRelease();
    std::unique_lock<std::mutex> relock(mutex.impl_, std::adopt_lock);
    cv_.wait(relock);
    relock.release(); // MutexLock keeps ownership.
    mutex.noteWaitReacquire();
}

} // namespace base
} // namespace aftermath
