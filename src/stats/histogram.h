/**
 * @file
 * Histograms for the statistical views.
 *
 * The statistics group of the main window shows, among others, a histogram
 * of the distribution of task durations for a user-selected interval
 * (paper section II-A group 2, Fig 16).
 */

#ifndef AFTERMATH_STATS_HISTOGRAM_H
#define AFTERMATH_STATS_HISTOGRAM_H

#include <cstdint>
#include <optional>
#include <vector>

#include "base/resolution.h"

namespace aftermath {
namespace stats {

/** A fixed-width-bin histogram over double-valued observations. */
class Histogram
{
  public:
    /**
     * How the observation set was selected (base/resolution.h): exact
     * task-list scan, or the pyramid's start-sorted task array over a
     * snapped interval. Bin counts themselves are always exact over
     * the selected set.
     */
    ResolutionInfo resolution;

    /**
     * Build a histogram of @p values with @p num_bins equal bins.
     *
     * @param values Observations; values outside [min, max] are clamped
     *        into the first/last bin.
     * @param num_bins Number of bins (>= 1).
     * @param min Lower edge; defaults to the minimum observation.
     * @param max Upper edge; defaults to the maximum observation.
     */
    static Histogram fromValues(const std::vector<double> &values,
                                std::uint32_t num_bins,
                                std::optional<double> min = std::nullopt,
                                std::optional<double> max = std::nullopt);

    /**
     * Reconstruct a histogram from its bin counts and range — the
     * decode half of the wire serialization (stats/export.h). The
     * total is the sum of @p counts and the bin width is recomputed
     * from the range, so a histogram round-tripped through
     * encode/decode is bit-identical to the original (fromValues
     * stores post-clamp edges; the width expression is deterministic
     * on IEEE doubles).
     *
     * @param counts Per-bin observation counts (>= 1 bin).
     * @param min Lower edge of the range, as rangeMin() returned it.
     * @param max Upper edge of the range, as rangeMax() returned it.
     */
    static Histogram fromBins(std::vector<std::uint64_t> counts,
                              double min, double max);

    /** Number of bins. */
    std::uint32_t numBins() const
    {
        return static_cast<std::uint32_t>(counts_.size());
    }

    /** Count in bin @p i. */
    std::uint64_t count(std::uint32_t i) const { return counts_.at(i); }

    /** Fraction of all observations in bin @p i (0 if empty histogram). */
    double fraction(std::uint32_t i) const;

    /** Center value of bin @p i. */
    double binCenter(std::uint32_t i) const;

    /** Lower edge of bin @p i. */
    double binLow(std::uint32_t i) const;

    /** Width of each bin. */
    double binWidth() const { return width_; }

    /** Total number of observations. */
    std::uint64_t total() const { return total_; }

    /** Lower edge of the histogram range. */
    double rangeMin() const { return min_; }

    /** Upper edge of the histogram range. */
    double rangeMax() const { return max_; }

    /** Indices of local maxima (bins higher than both neighbours). */
    std::vector<std::uint32_t> peaks() const;

  private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    double min_ = 0.0;
    double max_ = 0.0;
    double width_ = 0.0;
};

} // namespace stats
} // namespace aftermath

#endif // AFTERMATH_STATS_HISTOGRAM_H
