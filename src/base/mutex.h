/**
 * @file
 * Annotated mutex primitives plus the debug lock-rank deadlock checker.
 *
 * base::Mutex / base::MutexLock / base::CondVar wrap the std primitives
 * with two layers the library's concurrency contract rests on:
 *
 *  1. Clang Thread Safety attributes (base/thread_annotations.h), so
 *     every AM_GUARDED_BY member access is compile-checked under
 *     -Werror=thread-safety. The analysis proves "no guarded access
 *     without the lock" on *all* paths, not just the schedules a TSan
 *     run happens to exercise.
 *
 *  2. A runtime lock-rank checker for what annotations cannot express:
 *     deadlock freedom. Every Mutex may carry a rank from the registry
 *     below; a thread-local stack of held ranked locks detects
 *     out-of-order acquisition the moment it happens — before the
 *     schedule that actually deadlocks ever runs — and aborts with both
 *     acquisition sites. Enabled when the library is compiled with
 *     AFTERMATH_LOCK_RANK_CHECKS=1 (the default of the CMake option;
 *     see Mutex::rankChecksEnabled()).
 *
 * ## The global lock order (rank registry)
 *
 * Lower rank = acquired earlier. A thread may only acquire a ranked
 * mutex whose rank is strictly greater than that of every ranked mutex
 * it already holds; acquiring an equal rank (including re-entry on the
 * same mutex) aborts too. Unranked mutexes (the default constructor)
 * are exempt — use a rank for any mutex that can nest with another.
 *
 *   kDaemonServer (40)      daemon::Server::mutex_ — connection list +
 *                           shared-trace registry; held while opening a
 *                           trace entry, before any connection or
 *                           session lock.
 *   kDaemonConnection (50)  one daemon connection's state: in-flight
 *                           request map + response send queue. Held by
 *                           request handlers across submit() (every
 *                           session/engine lock ranks higher) and by
 *                           completion callbacks enqueueing responses.
 *   kDaemonClient (60)      daemon::Client::mutex_ — pending-reply map
 *                           of the client library (never nests with
 *                           server-side locks in one thread; ranked for
 *                           in-process loopback tests).
 *   kQueryEngine (100)      session::QueryEngine::poolMutex_ — the
 *                           outermost lock of the query plane: held
 *                           across pool restart + enqueue (withPool)
 *                           and by the idle reaper.
 *   kStatsMemo (190)        session::StatsMemo::mutex — the
 *                           filter-independent memo (interval stats,
 *                           warmed pairs) shared across every client
 *                           viewing one trace.
 *   kSessionMemo (200)      session::SessionMemo::mutex — per-client
 *                           filter-keyed memo state shared with
 *                           executors.
 *   kCounterIndexShard (300) one CounterIndexCache shard; shards never
 *                           nest with each other.
 *   kPyramidShard (305)     one index::TracePyramids per-CPU shard;
 *                           shards never nest with each other.
 *   kRendererPool (310)     session::RendererPool::mutex_.
 *   kThreadPool (400)       base::ThreadPool::mutex_ — every enqueue
 *                           path ends here, so everything above must
 *                           rank lower.
 *   kDecodePipeline (410)   trace reader scan→decode lane queues.
 *   kTicketState (500)      per-query completion state (TicketState).
 *   kTaskState (510)        leaf completion gates: TaskHandle state,
 *                           parallelFor join gates.
 *
 * The registry is the one place the order lives; the acquisition-order
 * rationale is documented with the owning classes. When adding a new
 * mutex: find every lock that can be held while yours is acquired and
 * every lock acquired while yours is held, pick a rank strictly between
 * them, and add it here with a one-line owner note.
 */

#ifndef AFTERMATH_BASE_MUTEX_H
#define AFTERMATH_BASE_MUTEX_H

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>

#include "base/thread_annotations.h"

namespace aftermath {
namespace base {

/** The lock-rank registry; see the file comment for the full order. */
namespace lockrank {

/** Unranked: exempt from order checking (leaf locks that never nest). */
inline constexpr int kNone = -1;

inline constexpr int kDaemonServer = 40;
inline constexpr int kDaemonConnection = 50;
inline constexpr int kDaemonClient = 60;
inline constexpr int kQueryEngine = 100;
inline constexpr int kStatsMemo = 190;
inline constexpr int kSessionMemo = 200;
inline constexpr int kCounterIndexShard = 300;
inline constexpr int kPyramidShard = 305;
inline constexpr int kRendererPool = 310;
inline constexpr int kThreadPool = 400;
inline constexpr int kDecodePipeline = 410;
inline constexpr int kTicketState = 500;
inline constexpr int kTaskState = 510;

} // namespace lockrank

/**
 * A std::mutex with a thread-safety capability attribute and an
 * optional lock rank. Prefer MutexLock over manual lock()/unlock().
 * Same cost as std::mutex when rank checks are compiled out; with
 * checks on, ranked mutexes pay a thread-local stack push/pop.
 */
class AM_CAPABILITY("mutex") Mutex
{
  public:
    /** An unranked mutex (no order checking; for leaf locks only). */
    Mutex() : Mutex(lockrank::kNone, "unranked") {}

    /**
     * A ranked mutex named @p name (shown in violation reports). Pick
     * @p rank from the lockrank registry above.
     */
    explicit Mutex(int rank, const char *name)
        : rank_(rank), name_(name)
    {}

    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    /**
     * Acquire. The default arguments capture the call site for the
     * rank checker's violation report; never pass them explicitly.
     */
    void lock(const char *file = __builtin_FILE(),
              int line = __builtin_LINE()) AM_ACQUIRE();

    /** Release. */
    void unlock() AM_RELEASE();

    /**
     * Acquire without blocking; true on success. A try-lock cannot
     * deadlock, so it skips the order check but still records the held
     * lock for later blocking acquisitions to check against.
     */
    bool tryLock(const char *file = __builtin_FILE(),
                 int line = __builtin_LINE()) AM_TRY_ACQUIRE(true);

    /** This mutex's rank (lockrank::kNone when unranked). */
    int rank() const { return rank_; }

    /** The registry name given at construction. */
    const char *name() const { return name_; }

    /** True when the library was compiled with rank checking on. */
    static bool rankChecksEnabled();

    /**
     * Ranked locks the calling thread currently holds (0 when checks
     * are compiled out). Test observability only.
     */
    static std::size_t heldRankedLocks();

  private:
    friend class CondVar;

    /** Rank-checker hooks around a CondVar wait (see mutex.cc). */
    void noteWaitRelease();
    void noteWaitReacquire();

    std::mutex impl_;
    const int rank_;
    const char *const name_;
};

/**
 * RAII lock over a base::Mutex, annotated as a scoped capability so
 * the analysis credits the whole scope with the lock. Not movable: a
 * lock's scope is its lifetime.
 */
class AM_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex,
                       const char *file = __builtin_FILE(),
                       int line = __builtin_LINE()) AM_ACQUIRE(mutex)
        : mutex_(mutex)
    {
        mutex.lock(file, line);
    }

    ~MutexLock() AM_RELEASE() { mutex_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    friend class CondVar;

    Mutex &mutex_;
};

/**
 * Condition variable over base::Mutex. wait() atomically releases the
 * lock while sleeping and re-acquires before returning — including the
 * rank-checker bookkeeping, so a thread that waits while holding a
 * lower-ranked lock is caught on wake-up exactly like a fresh
 * out-of-order acquisition.
 *
 * No predicate overloads on purpose: write the condition as an
 * explicit `while (!cond) cv.wait(lock);` loop in the locked scope, so
 * the guarded reads of the condition sit where the thread-safety
 * analysis can see the held capability (a predicate lambda would be
 * opaque to it).
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /** Release, sleep until notified, re-acquire. Spurious wake-ups
     *  happen; always re-check the condition in a loop. */
    void wait(MutexLock &lock);

    /** wait() with a timeout; std::cv_status::timeout on expiry. */
    template <typename Rep, typename Period>
    std::cv_status
    waitFor(MutexLock &lock,
            const std::chrono::duration<Rep, Period> &timeout)
    {
        Mutex &mutex = lock.mutex_;
        mutex.noteWaitRelease();
        std::unique_lock<std::mutex> relock(mutex.impl_, std::adopt_lock);
        std::cv_status status = cv_.wait_for(relock, timeout);
        relock.release(); // MutexLock keeps ownership.
        mutex.noteWaitReacquire();
        return status;
    }

    /** Wake one waiter. */
    void notifyOne() { cv_.notify_one(); }

    /** Wake every waiter. */
    void notifyAll() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

} // namespace base
} // namespace aftermath

#endif // AFTERMATH_BASE_MUTEX_H
