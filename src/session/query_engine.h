/**
 * @file
 * The asynchronous query plane behind session::Session::submit().
 *
 * Session::submit(spec) returns a QueryTicket immediately and executes
 * the query on the QueryEngine's shared base::ThreadPool. A ticket is a
 * future with a status and a cancel: wait()/result() block until the
 * query finished, cancel() requests cooperative abandonment, and every
 * view/filter/trace mutation bumps the engine's generation counter so
 * stale in-flight queries cancel at the next chunk boundary instead of
 * wasting cores on a view the user already left.
 *
 * The two-queue contract: every spec carries a QueryPriority, and the
 * engine drains the Interactive queue strictly before the Background
 * queue. Interactive work (render, stats, histogram, task list,
 * extrema) jumps ahead of every queued Background task, and running
 * Background fan-out jobs (warm-up, background stats prefetches) poll
 * base::ThreadPool::hasHighPriorityWork() at their chunk boundaries —
 * the same boundaries at which they poll the cancellation token — and
 * yield their worker by re-submitting their continuation at Background
 * priority. A background warm-up storm therefore delays a
 * just-submitted interactive query by at most one chunk (one index
 * build, one per-CPU scan), never by the whole storm. The claim-cursor
 * protocol makes yielding invisible in the results: continuations
 * resume exactly where the job left off, and the merged output stays
 * bit-identical to a serial run. Single-task Background queries (trace
 * loads) queue behind interactive work but hold their worker once
 * running.
 *
 * Idle lifecycle: the pool starts lazily on the first submission, and
 * with setIdleTimeout(t) a reaper thread joins the workers after t of
 * quiescence — the next submission restarts them transparently.
 * shutdown() is the explicit form (drain, join, restart lazily).
 * Many-session programs and SessionGroup's shared engine reclaim their
 * parked workers this way instead of holding N idle pools alive.
 *
 * Executors never touch the Session object itself — they capture shared
 * ownership of everything they read (the trace, the sharded index
 * cache, a filter snapshot, the renderer pool, the SessionMemo) so
 * sessions stay movable and destruction is safe with queries in flight
 * (the engine's pool drains before it dies). Completed results publish
 * into the SessionMemo under its mutex, so asynchronous queries warm
 * the same memo the synchronous wrappers serve hits from.
 */

#ifndef AFTERMATH_SESSION_QUERY_ENGINE_H
#define AFTERMATH_SESSION_QUERY_ENGINE_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "base/logging.h"
#include "base/thread_pool.h"
#include "base/time_interval.h"
#include "base/types.h"
#include "session/query_cache.h"
#include "stats/interval_stats.h"
#include "trace/trace.h"

namespace aftermath {
namespace session {

/** Lifecycle of one submitted query. */
enum class QueryStatus
{
    /** Queued; no worker picked it up yet. */
    Pending,

    /** A worker is executing it. */
    Running,

    /** Finished; the result is available. */
    Done,

    /** Abandoned — cancel() or a generation bump; no result. */
    Cancelled,
};

namespace detail {

/**
 * Shared completion state of one query: the future's storage, the
 * cooperative cancellation token, and the generation snapshot checked
 * against the engine's live counter. Shared between the ticket, the
 * executor tasks, and nothing else.
 */
template <typename Result>
struct TicketState
{
    mutable std::mutex mutex;
    std::condition_variable cv;
    QueryStatus status = QueryStatus::Pending;
    std::optional<Result> result;
    base::CancellationToken cancel;
    base::TaskHandle handle; ///< Set for single-task queries only.

    /** Generation at submit; the query is stale once live differs. */
    std::uint64_t generation = 0;

    /** The engine's live counter; null = generation-immune (warm-up). */
    std::shared_ptr<const std::atomic<std::uint64_t>> live;

    /** True once the query should stop: cancelled or stale. */
    bool
    stale() const
    {
        if (cancel.cancelled())
            return true;
        return live &&
               live->load(std::memory_order_acquire) != generation;
    }

    /** Transition Pending -> Running (first worker in). */
    void
    markRunning()
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (status == QueryStatus::Pending)
            status = QueryStatus::Running;
    }

    /** Deliver the result unless the ticket was already cancelled. */
    void
    complete(Result value)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (status == QueryStatus::Done ||
            status == QueryStatus::Cancelled)
            return;
        result.emplace(std::move(value));
        status = QueryStatus::Done;
        cv.notify_all();
    }

    /** Terminal Cancelled transition (idempotent, loses to Done). */
    void
    completeCancelled()
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (status == QueryStatus::Done ||
            status == QueryStatus::Cancelled)
            return;
        status = QueryStatus::Cancelled;
        cv.notify_all();
    }
};

} // namespace detail

/**
 * The future half of one Session::submit() call: status observation,
 * blocking wait, result access, and cooperative cancellation. Tickets
 * are cheap shared handles — copy and pass them freely; all methods are
 * safe from any thread. A default-constructed ticket is inert.
 */
template <typename Result>
class QueryTicket
{
  public:
    QueryTicket() = default;

    /** Internal: wraps the shared state created by Session::submit. */
    explicit QueryTicket(
        std::shared_ptr<detail::TicketState<Result>> state)
        : state_(std::move(state))
    {}

    /** True if the ticket tracks a submitted query. */
    bool valid() const { return state_ != nullptr; }

    /** Current lifecycle state. */
    QueryStatus
    status() const
    {
        AFTERMATH_ASSERT(state_ != nullptr, "status() on an empty ticket");
        std::lock_guard<std::mutex> lock(state_->mutex);
        return state_->status;
    }

    /** The engine generation this query was submitted under. */
    std::uint64_t
    generation() const
    {
        AFTERMATH_ASSERT(state_ != nullptr,
                         "generation() on an empty ticket");
        return state_->generation;
    }

    /**
     * Request cooperative cancellation. A query still queued is
     * cancelled immediately (it never runs); a running query stops at
     * its next chunk boundary. A query that already completed keeps
     * its result.
     */
    void
    cancel()
    {
        AFTERMATH_ASSERT(state_ != nullptr, "cancel() on an empty ticket");
        state_->cancel.requestCancel();
        base::TaskHandle handle;
        {
            std::lock_guard<std::mutex> lock(state_->mutex);
            handle = state_->handle;
        }
        if (handle.valid() && handle.tryCancel())
            state_->completeCancelled();
    }

    /** Block until the query is Done or Cancelled; returns which. */
    QueryStatus
    wait() const
    {
        AFTERMATH_ASSERT(state_ != nullptr, "wait() on an empty ticket");
        std::unique_lock<std::mutex> lock(state_->mutex);
        state_->cv.wait(lock, [this] {
            return state_->status == QueryStatus::Done ||
                   state_->status == QueryStatus::Cancelled;
        });
        return state_->status;
    }

    /** True once wait() would not block. */
    bool
    done() const
    {
        QueryStatus s = status();
        return s == QueryStatus::Done || s == QueryStatus::Cancelled;
    }

    /**
     * Wait and return the result. Panics on a cancelled query — call
     * sites that may race a cancellation should wait() and check.
     */
    const Result &
    result() const
    {
        QueryStatus s = wait();
        AFTERMATH_ASSERT(s == QueryStatus::Done,
                         "result() on a cancelled query");
        return *state_->result;
    }

    /** Wait and move the result out (panics on a cancelled query). */
    Result
    take()
    {
        QueryStatus s = wait();
        AFTERMATH_ASSERT(s == QueryStatus::Done,
                         "take() on a cancelled query");
        return std::move(*state_->result);
    }

  private:
    std::shared_ptr<detail::TicketState<Result>> state_;
};

/**
 * The memoized query state one session shares with its in-flight
 * executors, guarded by one mutex: the per-interval statistics memo,
 * the per-filter-generation task list, the live filter generation, and
 * the set of (cpu, counter) pairs previous warm-ups covered (the
 * incremental re-warm-up bookkeeping). Heap-allocated and captured by
 * shared_ptr so executors survive session moves and destruction.
 */
struct SessionMemo
{
    mutable std::mutex mutex;
    MemoCache<std::pair<TimeStamp, TimeStamp>, stats::IntervalStats>
        stats;
    MemoCache<std::uint64_t, std::vector<const trace::TaskInstance *>>
        taskList;
    std::uint64_t filterGeneration = 0;
    std::set<std::pair<CpuId, CounterId>> warmedPairs;
};

/**
 * The shared execution substrate of one or more sessions: a lazily
 * started base::ThreadPool with a two-level priority queue, the
 * generation counters that invalidate in-flight queries, and the idle
 * lifecycle of the workers. A SessionGroup points every variant at one
 * engine so group-wide work (overlapped warm-up, submitAll) shares one
 * pool instead of parking workers per variant.
 *
 * Driving-side methods (pool(), withPool(), setWorkers(),
 * setIdleTimeout(), shutdown()) follow the session's
 * external-synchronization contract — one driving thread at a time;
 * generation()/bumpGeneration()/liveWorkers()/hasInteractiveWork() are
 * safe from any thread. With an idle timeout enabled, references
 * returned by pool() stay valid only while the pool is busy or within
 * the timeout of its last activity — enqueue through withPool() (which
 * holds the teardown lock) instead of holding the reference.
 */
class QueryEngine
{
  public:
    /** An engine whose pool will run @p workers threads (0 = one per
     *  hardware thread). The pool starts on the first submit. */
    explicit QueryEngine(unsigned workers = 1);

    /** Joins the reaper; the pool drains both queues before dying. */
    ~QueryEngine();

    QueryEngine(const QueryEngine &) = delete;
    QueryEngine &operator=(const QueryEngine &) = delete;

    /** Effective worker count of the (possibly parked) pool. */
    unsigned workers() const { return workers_; }

    /**
     * Resize the pool; takes effect immediately (a live pool drains its
     * queues and joins before the new size applies).
     */
    void setWorkers(unsigned workers);

    /**
     * The live generation, bumped by *every* shared-state mutation
     * (view, filters, trace). View-dependent queries (interval stats,
     * extrema, render) submitted under an older value are stale and
     * cancel cooperatively.
     */
    std::uint64_t
    generation() const
    {
        return generation_->load(std::memory_order_acquire);
    }

    /**
     * The live filter generation, bumped only by filter and trace
     * mutations. View-independent but filter-keyed queries (task list,
     * histogram) poll this one, so panning the view never spuriously
     * cancels them.
     */
    std::uint64_t
    filterGeneration() const
    {
        return filterGeneration_->load(std::memory_order_acquire);
    }

    /** Invalidate in-flight view-dependent queries (the view moved). */
    void
    bumpGeneration()
    {
        generation_->fetch_add(1, std::memory_order_acq_rel);
    }

    /** Invalidate every in-flight query (filters or trace moved). */
    void
    bumpFilterGeneration()
    {
        generation_->fetch_add(1, std::memory_order_acq_rel);
        filterGeneration_->fetch_add(1, std::memory_order_acq_rel);
    }

    /** The generation cell executors poll (shared, outlives the engine). */
    std::shared_ptr<const std::atomic<std::uint64_t>>
    generationCell() const
    {
        return generation_;
    }

    /** The filter-generation cell (shared, outlives the engine). */
    std::shared_ptr<const std::atomic<std::uint64_t>>
    filterGenerationCell() const
    {
        return filterGeneration_;
    }

    /**
     * The worker pool, restarted if parked. Driving side only; with an
     * idle timeout enabled, do not hold the reference across periods
     * of quiescence — the reaper may tear the pool down.
     */
    base::ThreadPool &pool();

    /**
     * Run @p body with the live pool (restarted if parked) while
     * holding the teardown lock, so the reaper cannot join the workers
     * between the restart and the body's enqueues. The submit path of
     * every executor. The body must only enqueue — calling back into
     * the engine deadlocks.
     */
    void withPool(const std::function<void(base::ThreadPool &)> &body);

    // -- Idle lifecycle ----------------------------------------------------

    /**
     * Park-then-join the workers after @p timeout of quiescence (both
     * queues empty, nothing running); zero (the default) keeps them
     * alive for the engine's lifetime. The next submission restarts
     * the pool transparently — only the thread start-up cost returns.
     * Starts the reaper thread on first use.
     */
    void setIdleTimeout(std::chrono::milliseconds timeout);

    /** The active idle timeout; zero = never torn down. */
    std::chrono::milliseconds idleTimeout() const { return idleTimeout_; }

    /**
     * Drain both queues, join the workers and release them now. Any
     * queued work (including background warm-up) completes first. The
     * next submission restarts the pool lazily; setWorkers() and the
     * idle timeout survive the cycle.
     */
    void shutdown();

    /**
     * Worker threads currently alive: 0 while the pool is parked (not
     * yet started, idle-reaped, or shut down), workers() otherwise.
     * Safe from any thread — the observable probe of idle teardown.
     */
    unsigned liveWorkers() const;

    /**
     * True while interactive (High) work is queued and waiting for a
     * worker. Background chunk loops poll the pool-level equivalent
     * (base::ThreadPool::hasHighPriorityWork()) directly.
     */
    bool hasInteractiveWork() const;

  private:
    /** Start the pool if parked; caller holds poolMutex_. */
    base::ThreadPool &ensurePoolLocked();

    /** Reaper main loop: park-then-join after idleTimeout_ quiescence. */
    void reaperLoop();

    std::shared_ptr<std::atomic<std::uint64_t>> generation_;
    std::shared_ptr<std::atomic<std::uint64_t>> filterGeneration_;
    unsigned workers_ = 1;

    /** Guards pool_ lifetime against the reaper thread. */
    mutable std::mutex poolMutex_;
    std::unique_ptr<base::ThreadPool> pool_;
    std::chrono::milliseconds idleTimeout_{0};
    std::thread reaper_;
    std::condition_variable reaperCv_;
    bool stopReaper_ = false;
};

} // namespace session
} // namespace aftermath

#endif // AFTERMATH_SESSION_QUERY_ENGINE_H
