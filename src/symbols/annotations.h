/**
 * @file
 * User annotations on traces.
 *
 * Trace analysis can be time-consuming and collaborative; Aftermath
 * records user-defined annotations that are saved independently from the
 * trace file and loaded for further analysis later (paper section VI-C).
 */

#ifndef AFTERMATH_SYMBOLS_ANNOTATIONS_H
#define AFTERMATH_SYMBOLS_ANNOTATIONS_H

#include <cstdint>
#include <string>
#include <vector>

#include "base/time_interval.h"
#include "base/types.h"

namespace aftermath {
namespace symbols {

/** One user annotation attached to a CPU and time interval. */
struct Annotation
{
    CpuId cpu = kInvalidCpu; ///< kInvalidCpu = applies to all CPUs.
    TimeInterval interval;
    std::string author;
    std::string text;
};

/** An ordered collection of annotations with sidecar-file persistence. */
class AnnotationStore
{
  public:
    /** Append an annotation. */
    void add(const Annotation &annotation);

    /** All annotations in insertion order. */
    const std::vector<Annotation> &all() const { return annotations_; }

    /** Annotations whose interval overlaps @p interval. */
    std::vector<const Annotation *> overlapping(
        const TimeInterval &interval) const;

    /**
     * Save to a sidecar file (text, one annotation per line with escaped
     * fields). Returns false with @p error set on failure.
     */
    bool save(const std::string &path, std::string &error) const;

    /**
     * Load a sidecar file previously produced by save(). Replaces the
     * current contents. Returns false with @p error set on malformed
     * input.
     */
    bool load(const std::string &path, std::string &error);

    /** Serialize to the sidecar format. */
    std::string serialize() const;

    /** Parse the sidecar format; false with @p error set on failure. */
    bool deserialize(const std::string &text, std::string &error);

  private:
    std::vector<Annotation> annotations_;
};

} // namespace symbols
} // namespace aftermath

#endif // AFTERMATH_SYMBOLS_ANNOTATIONS_H
