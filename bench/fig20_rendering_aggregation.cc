/**
 * @file
 * Fig 20 / section VI-B: predominant-state pixels + rectangle aggregation.
 *
 * Each horizontal pixel represents a trace interval whose length depends
 * on the zoom. Zoomed out, a naive renderer draws every state event
 * sequentially — many operations per pixel; Aftermath instead resolves
 * each pixel to its predominant state once and merges runs of
 * equal-colored pixels into single rectangles. This bench measures
 * drawing-operation counts and wall time for both algorithms across zoom
 * levels (google-benchmark timings plus a summary table).
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common.h"

using namespace aftermath;

namespace {

trace::Trace g_trace; // Built once in main before benchmarks run.
std::unique_ptr<session::Session> g_session;

void
buildTrace()
{
    workloads::SeidelParams params;
    params.blocksX = 32;
    params.blocksY = 32;
    params.blockDim = 32;
    params.iterations = 10;
    runtime::TaskSet set = workloads::buildSeidel(params);
    runtime::RuntimeConfig config;
    config.machine = machine::MachineSpec::small(4, 8);
    config.seed = 20;
    runtime::RunResult result = runtime::RuntimeSystem(config).run(set);
    if (!result.ok) {
        std::fprintf(stderr, "simulation failed: %s\n",
                     result.error.c_str());
        std::exit(1);
    }
    g_trace = std::move(result.trace);
    g_session = std::make_unique<session::Session>(
        session::Session::view(g_trace));
}

/** View covering 1/denominator of the trace (zoom level). */
TimeInterval
zoomView(std::uint64_t denominator)
{
    TimeInterval span = g_trace.span();
    return {span.start, span.start + span.duration() / denominator};
}

void
BM_RenderOptimized(benchmark::State &state)
{
    render::Framebuffer fb(1024, 256);
    render::TimelineConfig config;
    config.view = zoomView(static_cast<std::uint64_t>(state.range(0)));
    std::uint64_t ops = 0;
    for (auto _ : state)
        ops = g_session->render(config, fb).rectOps;
    state.counters["draw_ops"] = static_cast<double>(ops);
}

void
BM_RenderNaive(benchmark::State &state)
{
    render::Framebuffer fb(1024, 256);
    render::TimelineConfig config;
    config.view = zoomView(static_cast<std::uint64_t>(state.range(0)));
    std::uint64_t ops = 0;
    for (auto _ : state)
        ops = g_session->renderNaive(config, fb).rectOps;
    state.counters["draw_ops"] = static_cast<double>(ops);
}

BENCHMARK(BM_RenderOptimized)->Arg(1)->Arg(8)->Arg(64);
BENCHMARK(BM_RenderNaive)->Arg(1)->Arg(8)->Arg(64);

} // namespace

int
main(int argc, char **argv)
{
    bench::banner("Fig 20",
                  "rendering: predominant state + rectangle aggregation");
    buildTrace();

    // Summary table of operation counts per zoom level.
    std::printf("\nzoom_fraction, naive_ops, optimized_ops, reduction\n");
    bool ok = true;
    for (std::uint64_t denom : {1, 8, 64}) {
        render::Framebuffer fb(1024, 256);
        render::TimelineConfig config;
        config.view = zoomView(denom);
        std::uint64_t naive = g_session->renderNaive(config, fb).rectOps;
        std::uint64_t optimized = g_session->render(config, fb).rectOps;
        std::printf("1/%llu, %llu, %llu, %.1fx\n",
                    static_cast<unsigned long long>(denom),
                    static_cast<unsigned long long>(naive),
                    static_cast<unsigned long long>(optimized),
                    static_cast<double>(naive) /
                        static_cast<double>(optimized));
        // Zoomed out (full view) the optimization must win clearly.
        if (denom == 1)
            ok = naive > 2 * optimized;
    }
    std::printf("\n");
    bench::row("aggregation reduces ops when zoomed out",
               ok ? "yes" : "NO");

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return ok ? 0 : 1;
}
