/**
 * @file
 * Value-type query specifications for the asynchronous query plane.
 *
 * The paper's interactivity promise is that no user interaction stalls
 * the UI: every view answers from precomputed structures while heavy
 * work runs off the interaction path (sections II-A, VI-B). These specs
 * make that promise expressible in the API — a query is a small value
 * describing *what* to compute, handed to Session::submit(), which
 * returns a QueryTicket immediately and executes the work on the shared
 * worker pool (see session/query_engine.h). Every spec mirrors one
 * synchronous Session method and produces a bit-identical result.
 *
 * ## The QueryContext contract
 *
 * Every spec embeds one QueryContext as its first member, carrying the
 * three knobs common to the whole query plane:
 *
 *  - interval: std::optional — std::nullopt means "the session's
 *    current view at submit time", while an explicit interval (even an
 *    empty one) is used exactly as given, matching the synchronous
 *    overload pairs. Specs without an interval notion ignore it unless
 *    documented otherwise (HistogramQuery restricts to tasks starting
 *    inside it).
 *  - priority: the scheduling class; each spec's QueryContext default
 *    matches its role (render/stats/histogram/task-list/extrema are
 *    Interactive; warm-up, anomaly scans, trace loads and pyramid
 *    builds are Background).
 *  - resolution: how much error the caller tolerates
 *    (base/resolution.h). Resolution::Exact — the default — keeps
 *    every result bit-identical to the historical scan. Budget/Pixels
 *    let interval stats, histograms, counter extrema and timeline
 *    renders answer from the summary pyramids
 *    (index/summary_pyramid.h) in O(log n + output resolution): the
 *    interval snaps outward to a granularity within the budget and
 *    the *snapped* interval is answered exactly; results carry a
 *    ResolutionInfo provenance telling approximate answers from exact
 *    ones. Approximate results are never memoized.
 *
 * Construct specs with nested braces or designated initializers —
 * `IntervalStatsQuery{{interval}}`,
 * `HistogramQuery{.context = {}, .numBins = 16}` — or default-construct
 * and assign through `spec.context`. The pre-QueryContext field names
 * survive one deprecation cycle as accessor aliases
 * (`spec.interval()`, `spec.priority()`); new code should reach
 * through `spec.context` directly.
 */

#ifndef AFTERMATH_SESSION_QUERY_H
#define AFTERMATH_SESSION_QUERY_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "base/resolution.h"
#include "base/time_interval.h"
#include "base/types.h"
#include "render/framebuffer.h"
#include "render/render_stats.h"
#include "render/timeline_renderer.h"
#include "stats/anomaly.h"
#include "trace/format.h"
#include "trace/trace.h"

namespace aftermath {
namespace session {

/**
 * Scheduling class of one submitted query on the engine's two-level
 * queue. Interactive queries jump ahead of every queued Background
 * task, and running Background fan-out jobs (interval statistics,
 * warm-up) yield their workers cooperatively at chunk boundaries when
 * Interactive work arrives. Every spec's QueryContext carries a
 * default matching its role, and callers can override it per
 * submission (e.g. a speculative prefetch of the next view's stats
 * submits an IntervalStatsQuery at Background).
 */
enum class QueryPriority
{
    /** Latency-critical: a user is waiting on the result. */
    Interactive,

    /** Prefetch/bulk work: runs when no interactive work is queued. */
    Background,
};

/**
 * The knobs shared by every query spec: the target interval, the
 * scheduling class, and the resolution request. See the file comment
 * for the contract.
 */
struct QueryContext
{
    QueryContext() = default;

    /**
     * Trailing knobs default so call sites spell only what they
     * override: `{interval}`, `{interval, priority}`,
     * `{std::nullopt, QueryPriority::Background}`, ...
     */
    QueryContext(std::optional<TimeInterval> interval_,
                 QueryPriority priority_ = QueryPriority::Interactive,
                 Resolution resolution_ = {})
        : interval(std::move(interval_)), priority(priority_),
          resolution(resolution_)
    {}

    /** Lets `SomeQuery{interval}` convert in one step. */
    QueryContext(TimeInterval interval_,
                 QueryPriority priority_ = QueryPriority::Interactive,
                 Resolution resolution_ = {})
        : interval(interval_), priority(priority_), resolution(resolution_)
    {}

    /** Interval to operate on; nullopt = the current view. */
    std::optional<TimeInterval> interval;

    /** Scheduling class on the engine's two-level queue. */
    QueryPriority priority = QueryPriority::Interactive;

    /** Error tolerance; Exact = the historical bit-identical path. */
    Resolution resolution;
};

/**
 * What a warm-up prefetches. Warm-up is incremental: (cpu, counter)
 * pairs already warmed by an earlier warm-up of the same session are
 * skipped, and the interval statistics / task list units are skipped
 * when the current view's (or filter generation's) entry is already
 * memoized — so a re-warm-up after a view change rebuilds only what
 * the new view needs.
 */
struct WarmupPolicy
{
    /** Build the min/max index of every sampled (cpu, counter). */
    bool counterIndexes = true;

    /**
     * Restrict index warm-up to these counter ids; empty means every
     * counter sampled on each CPU.
     */
    std::vector<CounterId> counters;

    /** Memoize the interval statistics of the current view. */
    bool intervalStats = true;

    /** Cache the task list of the active filters. */
    bool taskList = true;
};

/** What one warm-up actually did. */
struct WarmupStats
{
    /** (cpu, counter) pairs scheduled by this call. */
    std::size_t indexesVisited = 0;

    /** Indexes newly built by this call. */
    std::size_t indexesBuilt = 0;

    /** Pairs skipped because an earlier warm-up already covered them. */
    std::size_t indexesSkipped = 0;

    /** Worker threads available to the executing pool. */
    unsigned workers = 1;
};

/**
 * Aggregate statistics of one interval (Session::intervalStats). The
 * cold exact scan executes in parallel: per-CPU state chunks and
 * task-array chunks produce partial sums merged at the end (exact
 * integer sums, so the result is bit-identical to the serial scan at
 * any worker count). Memoized results answer as already-completed
 * tickets. Under Resolution::Budget/Pixels the interval snaps to the
 * pyramid granularity and the snapped interval is answered exactly
 * from O(log n) nodes; the result's interval and resolution fields
 * report what was actually computed.
 */
struct IntervalStatsQuery
{
    QueryContext context;

    /** Deprecated alias of context.interval (one deprecation cycle). */
    std::optional<TimeInterval> &interval() { return context.interval; }
    const std::optional<TimeInterval> &interval() const
    {
        return context.interval;
    }

    /** Deprecated alias of context.priority (one deprecation cycle). */
    QueryPriority &priority() { return context.priority; }
    QueryPriority priority() const { return context.priority; }
};

/**
 * Duration histogram of the tasks passing the active filters. When
 * context.interval is set, only tasks *starting* inside it are binned
 * (the interval-stats tasksStarted notion); under Budget/Pixels the
 * interval snaps to the pyramid granularity and the selection uses the
 * pyramid's start-sorted task array instead of a full list scan.
 */
struct HistogramQuery
{
    QueryContext context;

    /** Number of equal-width bins. */
    std::uint32_t numBins = 20;

    /** Deprecated alias of context.priority (one deprecation cycle). */
    QueryPriority &priority() { return context.priority; }
    QueryPriority priority() const { return context.priority; }
};

/** The task instances passing the active filters (Session::tasks). */
struct TaskListQuery
{
    QueryContext context;

    /** Deprecated alias of context.priority (one deprecation cycle). */
    QueryPriority &priority() { return context.priority; }
    QueryPriority priority() const { return context.priority; }
};

/**
 * Extrema of one counter on one CPU (Session::counterExtrema): through
 * the cached min/max index at Resolution::Exact, or from the pyramid's
 * per-node counter aggregates over the snapped interval under
 * Budget/Pixels.
 */
struct CounterExtremaQuery
{
    QueryContext context;

    CpuId cpu = 0;
    CounterId counter = 0;

    /** Deprecated alias of context.interval (one deprecation cycle). */
    std::optional<TimeInterval> &interval() { return context.interval; }
    const std::optional<TimeInterval> &interval() const
    {
        return context.interval;
    }

    /** Deprecated alias of context.priority (one deprecation cycle). */
    QueryPriority &priority() { return context.priority; }
    QueryPriority priority() const { return context.priority; }
};

/**
 * Prefetch the structures @p policy names (Session::warmup).
 *
 * Background by default: a warm-up storm must never delay a
 * just-submitted interactive query (its drainers yield at every
 * index-build boundary). The synchronous Session::warmup() wrapper
 * submits at Interactive, since its caller blocks on the result.
 */
struct WarmupQuery
{
    QueryContext context{std::nullopt, QueryPriority::Background,
                         Resolution{}};

    WarmupPolicy policy;

    /** Deprecated alias of context.priority (one deprecation cycle). */
    QueryPriority &priority() { return context.priority; }
    QueryPriority priority() const { return context.priority; }
};

/**
 * Build the summary pyramids (index/summary_pyramid.h) of every CPU
 * off the interactive path, chunked per CPU on the engine's pool like
 * WarmupQuery: Background by default, cooperative yield at every
 * pyramid-build boundary, generation-immune (view/filter mutations
 * never cancel it — the pyramids are trace-keyed, not view-keyed;
 * only ticket.cancel() stops it). Idempotent: CPUs whose pyramid an
 * earlier build (or a resolution-bearing query) already constructed
 * are visited but not rebuilt.
 */
struct PyramidBuildQuery
{
    QueryContext context{std::nullopt, QueryPriority::Background,
                         Resolution{}};

    /** Deprecated-style alias for symmetry with the other specs. */
    QueryPriority &priority() { return context.priority; }
    QueryPriority priority() const { return context.priority; }
};

/** What one pyramid build actually did. */
struct PyramidBuildStats
{
    /** CPUs scheduled by this call. */
    std::size_t cpusVisited = 0;

    /** Pyramids newly built by this call. */
    std::size_t cpusBuilt = 0;

    /** Worker threads available to the executing pool. */
    unsigned workers = 1;
};

/**
 * Render the timeline into a query-owned framebuffer of the given
 * dimensions. Session filters and view are injected at submit time when
 * the config names none, exactly like Session::render(); a config that
 * names a taskFilter must keep it alive until the ticket completes.
 * A non-Exact context.resolution overrides the config's resolution
 * field, letting remote and async callers request pyramid-backed
 * rendering without touching the render config.
 */
struct TimelineRenderQuery
{
    QueryContext context;

    render::TimelineConfig config;
    std::uint32_t width = 640;
    std::uint32_t height = 360;

    /** Deprecated alias of context.priority (one deprecation cycle). */
    QueryPriority &priority() { return context.priority; }
    QueryPriority priority() const { return context.priority; }
};

/** The finished frame and operation counts of a TimelineRenderQuery. */
struct TimelineRenderResult
{
    // 1x1 placeholder (Framebuffer has no empty state); the executor
    // replaces it with the width x height frame before completion.
    render::Framebuffer fb{1, 1};
    render::RenderStats stats;
};

/**
 * Ranked anomaly scan of the current view (Session::scanForAnomalies):
 * idle phases, duration outliers and counter bursts in one list, see
 * stats/anomaly.h. The executor fans the scan out as independent chunks
 * — one per CPU, one per task type, one per sampled (cpu, counter) pair
 * — on the shared pool and merges partials deterministically, so the
 * result is bit-identical to the serial scanner at any worker count.
 * The scan respects the session's active FilterSet (outlier detection
 * is restricted to tasks it accepts) and is view-generation-aware: a
 * view or filter change while the scan is queued or running cancels it.
 * Cancellation — explicit or by generation bump — is cooperative at
 * chunk boundaries. The detectors need exact event positions, so
 * context.resolution is accepted but treated as Exact.
 *
 * Background by default: a whole-trace scan is a "find me something
 * interesting" sweep, not a blocking interaction. The synchronous
 * Session::scanForAnomalies() wrapper submits at Interactive.
 */
struct AnomalyScanQuery
{
    QueryContext context{std::nullopt, QueryPriority::Background,
                         Resolution{}};

    /** Detector thresholds and the per-kind cap. */
    stats::AnomalyScanOptions options;

    /** Deprecated alias of context.interval (one deprecation cycle). */
    std::optional<TimeInterval> &interval() { return context.interval; }
    const std::optional<TimeInterval> &interval() const
    {
        return context.interval;
    }

    /** Deprecated alias of context.priority (one deprecation cycle). */
    QueryPriority &priority() { return context.priority; }
    QueryPriority priority() const { return context.priority; }
};

/**
 * Load a trace off the interaction path: the two-phase parallel reader
 * (trace/reader.h) runs on the engine's pool and the finished trace
 * comes back through the ticket, ready to swap in with
 * Session::setTrace(result.trace) from the driving thread — executors
 * never mutate the session, so queries over the old trace stay valid
 * until the swap.
 *
 * Exactly one source must be set: a file path, or a shared in-memory
 * byte buffer (kept alive by the executor until completion). Like
 * warm-up, a load is generation-immune — view/filter/trace mutations
 * do not cancel it; ticket.cancel() does, cooperatively at the next
 * frame-run boundary (the ticket completes Cancelled, no result).
 *
 * Background by default: a load queues behind interactive work, and
 * while running its frame-scan loop drains queued Interactive tasks at
 * batch boundaries (the scan polls between frame runs), so even a
 * single-worker engine stays responsive during a long load.
 */
struct TraceLoadQuery
{
    QueryContext context{std::nullopt, QueryPriority::Background,
                         Resolution{}};

    /** File to load; used when @p bytes is null. */
    std::string path;

    /** In-memory stream to load; takes precedence over @p path. */
    std::shared_ptr<const std::vector<std::uint8_t>> bytes;

    /** Decode workers of the parallel phase; 0 = the engine's count. */
    unsigned workers = 0;

    /** Deprecated alias of context.priority (one deprecation cycle). */
    QueryPriority &priority() { return context.priority; }
    QueryPriority priority() const { return context.priority; }
};

/** Outcome of a TraceLoadQuery (mirrors trace::ReadResult). */
struct TraceLoadResult
{
    /** True if the trace parsed and finalized. */
    bool ok = false;

    /** Diagnostic when !ok (carries byte offset + frame kind). */
    std::string error;

    /** The loaded trace when ok; pass to Session::setTrace to swap. */
    std::shared_ptr<const trace::Trace> trace;

    /** Encoding found in the trace header. */
    trace::Encoding encoding = trace::Encoding::Raw;

    /** Total bytes consumed. */
    std::size_t bytesRead = 0;
};

} // namespace session
} // namespace aftermath

#endif // AFTERMATH_SESSION_QUERY_H
