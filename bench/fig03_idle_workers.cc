/**
 * @file
 * Fig 3: number of idle workers over normalized execution time.
 *
 * Aftermath generates a derived counter for the number of workers
 * simultaneously in a given state by dividing the execution into
 * intervals and summing per-worker state occupancy (paper section III-A).
 * For seidel, the resulting plot peaks above half the 192 cores during
 * the two idle phases.
 */

#include <cstdio>

#include "common.h"

using namespace aftermath;

int
main()
{
    bench::banner("Fig 3", "seidel: derived counter of idle workers");

    runtime::RunResult result = bench::runSeidel(false);
    if (!result.ok) {
        std::fprintf(stderr, "simulation failed: %s\n",
                     result.error.c_str());
        return 1;
    }
    const trace::Trace &tr = result.trace;
    Session session = Session::view(tr);

    metrics::DerivedCounter idle = session.stateOccupancy(
        static_cast<std::uint32_t>(trace::CoreState::Idle), 100);

    std::printf("\nnormalized_time_pct, idle_workers\n");
    TimeStamp span = tr.span().duration();
    for (const auto &sample : idle.samples) {
        std::printf("%.1f, %.2f\n",
                    100.0 * static_cast<double>(sample.time) /
                        static_cast<double>(span),
                    sample.value);
    }

    double peak = idle.maxValue();
    double half = tr.numCpus() / 2.0;
    std::printf("\n");
    bench::row("workers", strFormat("%u", tr.numCpus()));
    bench::row("peak simultaneous idle workers",
               strFormat("%.1f (paper: peaks exceed %g)", peak, half));
    bool shape = peak > half;
    bench::row("peak exceeds half the cores", shape ? "yes" : "NO");

    // Render the overlay over the timeline as the paper displays it.
    render::Framebuffer fb(1000, 200);
    session.render({}, fb);
    session.renderGlobalOverlay(idle, session.layoutFor(fb), {}, fb);
    std::string error;
    if (fb.writePpmFile("fig03_idle_workers.ppm", error))
        std::printf("wrote fig03_idle_workers.ppm\n");
    return shape ? 0 : 1;
}
