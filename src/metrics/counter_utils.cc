#include "metrics/counter_utils.h"

#include <algorithm>

namespace aftermath {
namespace metrics {

namespace {

/** Iterator to the last sample with time <= t, or end() if none. */
std::vector<trace::CounterSample>::const_iterator
lastSampleAtOrBefore(const std::vector<trace::CounterSample> &samples,
                     TimeStamp t)
{
    auto it = std::upper_bound(
        samples.begin(), samples.end(), t,
        [](TimeStamp time, const trace::CounterSample &s) {
            return time < s.time;
        });
    if (it == samples.begin())
        return samples.end();
    return it - 1;
}

} // namespace

std::optional<std::int64_t>
counterValueAt(const trace::CpuTimeline &timeline, CounterId counter,
               TimeStamp t)
{
    const auto &samples = timeline.counterSamples(counter);
    auto it = lastSampleAtOrBefore(samples, t);
    if (it == samples.end())
        return std::nullopt;
    return it->value;
}

std::optional<double>
counterValueInterpolated(const trace::CpuTimeline &timeline,
                         CounterId counter, TimeStamp t)
{
    const auto &samples = timeline.counterSamples(counter);
    if (samples.empty())
        return std::nullopt;
    auto after = std::lower_bound(
        samples.begin(), samples.end(), t,
        [](const trace::CounterSample &s, TimeStamp time) {
            return s.time < time;
        });
    if (after == samples.begin())
        return static_cast<double>(samples.front().value);
    if (after == samples.end())
        return static_cast<double>(samples.back().value);
    auto before = after - 1;
    if (after->time == before->time)
        return static_cast<double>(after->value);
    double frac = static_cast<double>(t - before->time) /
                  static_cast<double>(after->time - before->time);
    return static_cast<double>(before->value) +
           frac * static_cast<double>(after->value - before->value);
}

} // namespace metrics
} // namespace aftermath
