/** @file Tests of the runtime simulator: correctness and determinism. */

#include <gtest/gtest.h>

#include <map>

#include "machine/machine_spec.h"
#include "runtime/runtime_system.h"
#include "trace/state.h"
#include "workloads/synthetic.h"

namespace aftermath {
namespace runtime {
namespace {

RuntimeConfig
smallConfig(std::uint64_t seed = 1,
            SchedulingPolicy policy = SchedulingPolicy::RandomSteal)
{
    RuntimeConfig config;
    config.machine = machine::MachineSpec::small(2, 4);
    config.scheduling = policy;
    config.seed = seed;
    return config;
}

TEST(Scheduler, PlaceTaskHonorsHomeNode)
{
    trace::MachineTopology topo = trace::MachineTopology::uniform(2, 4);
    Scheduler numa(topo, SchedulingPolicy::NumaAware, 1);
    SimTask task;
    task.homeNode = 1;
    for (int i = 0; i < 16; i++) {
        CpuId cpu = numa.placeTask(task, 0);
        EXPECT_EQ(topo.nodeOfCpu(cpu), 1u);
    }
    // Random policy keeps the hint CPU.
    Scheduler rand_sched(topo, SchedulingPolicy::RandomSteal, 1);
    EXPECT_EQ(rand_sched.placeTask(task, 5), 5u);
    // Without a home the NUMA policy also keeps the hint.
    SimTask homeless;
    EXPECT_EQ(numa.placeTask(homeless, 3), 3u);
}

TEST(Scheduler, VictimNeverSelf)
{
    trace::MachineTopology topo = trace::MachineTopology::uniform(2, 4);
    Scheduler sched(topo, SchedulingPolicy::RandomSteal, 2);
    for (std::uint32_t attempt = 0; attempt < 100; attempt++)
        EXPECT_NE(sched.chooseVictim(3, attempt), 3u);
}

TEST(Scheduler, NumaAwareProbesLocalFirst)
{
    trace::MachineTopology topo = trace::MachineTopology::uniform(2, 4);
    Scheduler sched(topo, SchedulingPolicy::NumaAware, 3);
    // First attempts target the thief's own node (node 1 for cpu 5).
    for (std::uint32_t attempt = 0; attempt < 3; attempt++) {
        CpuId v = sched.chooseVictim(5, attempt);
        EXPECT_EQ(topo.nodeOfCpu(v), 1u) << "attempt " << attempt;
        EXPECT_NE(v, 5u);
    }
}

TEST(Scheduler, SleeperSelection)
{
    trace::MachineTopology topo = trace::MachineTopology::uniform(2, 4);
    Scheduler numa(topo, SchedulingPolicy::NumaAware, 4);
    std::set<CpuId> sleepers{2, 6};
    // Origin on node 0 -> wake the node-0 sleeper.
    EXPECT_EQ(numa.chooseSleeperToWake(sleepers, 1), 2u);
    // Origin on node 1 -> prefer cpu 6.
    EXPECT_EQ(numa.chooseSleeperToWake(sleepers, 5), 6u);
    EXPECT_EQ(numa.chooseSleeperToWake({}, 0), kInvalidCpu);
}

class RuntimeProperty : public ::testing::TestWithParam<int>
{};

TEST_P(RuntimeProperty, ExecutesEveryTaskOnceRespectingDeps)
{
    int seed = GetParam();
    TaskSet set = workloads::buildRandomDag(250, 5, seed, 8'000);
    RuntimeSystem rts(smallConfig(seed));
    RunResult result = rts.run(set);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.tasksExecuted, set.tasks.size());

    // Exactly one instance per task.
    ASSERT_EQ(result.trace.taskInstances().size(), set.tasks.size());
    std::map<TaskInstanceId, const trace::TaskInstance *> by_id;
    for (const trace::TaskInstance &inst : result.trace.taskInstances()) {
        EXPECT_TRUE(by_id.emplace(inst.id, &inst).second)
            << "task " << inst.id << " executed twice";
        EXPECT_GT(inst.duration(), 0u);
    }

    // Dependences respected: producer finished before consumer started.
    for (const SimTask &task : set.tasks) {
        const trace::TaskInstance *consumer = by_id.at(task.id);
        for (std::uint64_t dep : task.deps) {
            const trace::TaskInstance *producer = by_id.at(dep);
            EXPECT_LE(producer->interval.end, consumer->interval.start)
                << "task " << task.id << " started before dep " << dep;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuntimeProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 21, 99));

TEST(Runtime, DeterministicForSeed)
{
    TaskSet set = workloads::buildRandomDag(150, 4, 7, 5'000);
    RunResult a = RuntimeSystem(smallConfig(11)).run(set);
    RunResult b = RuntimeSystem(smallConfig(11)).run(set);
    RunResult c = RuntimeSystem(smallConfig(12)).run(set);
    ASSERT_TRUE(a.ok && b.ok && c.ok);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.steals, b.steals);
    EXPECT_NE(a.makespan, c.makespan); // Different seed, different noise.
}

TEST(Runtime, ChainRunsSequentially)
{
    TaskSet set = workloads::buildChain(40, 10'000);
    RunResult result = RuntimeSystem(smallConfig()).run(set);
    ASSERT_TRUE(result.ok) << result.error;
    // A chain can never overlap: makespan >= sum of task durations.
    TimeStamp total = 0;
    for (const trace::TaskInstance &inst : result.trace.taskInstances())
        total += inst.duration();
    EXPECT_GE(result.makespan, total);
}

TEST(Runtime, ParallelTasksActuallyRunInParallel)
{
    TaskSet set = workloads::buildParallel(64, 200'000);
    RunResult result = RuntimeSystem(smallConfig()).run(set);
    ASSERT_TRUE(result.ok) << result.error;
    TimeStamp total = 0;
    for (const trace::TaskInstance &inst : result.trace.taskInstances())
        total += inst.duration();
    // 8 CPUs: the makespan must beat 1/4 of the serial time.
    EXPECT_LT(result.makespan, total / 4);
    EXPECT_GT(result.steals, 0u);
}

TEST(Runtime, InvalidTaskSetRejected)
{
    TaskSet set = workloads::buildChain(3);
    set.tasks[1].deps.push_back(99); // Out of range.
    RunResult result = RuntimeSystem(smallConfig()).run(set);
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.error.find("invalid task set"), std::string::npos);
}

TEST(Runtime, DependenceCycleReportsDeadlock)
{
    TaskSet set = workloads::buildChain(4);
    set.tasks[1].deps.push_back(2); // 1 -> 2 and 2 -> 1.
    RunResult result = RuntimeSystem(smallConfig()).run(set);
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.error.find("deadlock"), std::string::npos);
}

TEST(Runtime, RecordOptionsNoneSkipsTraceBulk)
{
    TaskSet set = workloads::buildForkJoin(4, 16, 20'000);
    RuntimeConfig config = smallConfig();
    config.record = RecordOptions::none();
    RunResult result = RuntimeSystem(config).run(set);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_GT(result.makespan, 0u);
    for (CpuId c = 0; c < result.trace.numCpus(); c++) {
        EXPECT_TRUE(result.trace.cpu(c).states().empty());
        EXPECT_TRUE(result.trace.cpu(c).counterIds().empty());
    }
    // Task instances are always recorded (they are the analysis anchor).
    EXPECT_EQ(result.trace.taskInstances().size(), set.tasks.size());
}

TEST(Runtime, CountersAreMonotone)
{
    TaskSet set = workloads::buildForkJoin(3, 8, 50'000);
    RunResult result = RuntimeSystem(smallConfig()).run(set);
    ASSERT_TRUE(result.ok);
    for (CpuId c = 0; c < result.trace.numCpus(); c++) {
        for (CounterId id : result.trace.cpu(c).counterIds()) {
            const auto &samples = result.trace.cpu(c).counterSamples(id);
            for (std::size_t i = 1; i < samples.size(); i++) {
                EXPECT_GE(samples[i].value, samples[i - 1].value)
                    << "cpu " << c << " counter " << id;
            }
        }
    }
}

TEST(Runtime, StatesCoverTaskExecution)
{
    TaskSet set = workloads::buildParallel(20, 30'000);
    RunResult result = RuntimeSystem(smallConfig()).run(set);
    ASSERT_TRUE(result.ok);
    // Every task instance has a matching task_exec state on its cpu.
    for (const trace::TaskInstance &inst : result.trace.taskInstances()) {
        const auto &states = result.trace.cpu(inst.cpu).states();
        bool found = false;
        for (const trace::StateEvent &ev : states) {
            if (ev.task == inst.id &&
                ev.state == static_cast<std::uint32_t>(
                    trace::CoreState::TaskExec) &&
                ev.interval == inst.interval) {
                found = true;
                break;
            }
        }
        EXPECT_TRUE(found) << "task " << inst.id;
    }
}

TEST(Runtime, NumaAwarePlacementKeepsTasksOnHomeNode)
{
    TaskSet set = workloads::buildParallel(64, 100'000);
    for (SimTask &task : set.tasks)
        task.homeNode = task.id % 2;
    RuntimeConfig config = smallConfig(5, SchedulingPolicy::NumaAware);
    RunResult result = RuntimeSystem(config).run(set);
    ASSERT_TRUE(result.ok);
    std::uint64_t on_home = 0;
    for (const trace::TaskInstance &inst : result.trace.taskInstances()) {
        NodeId node = result.trace.topology().nodeOfCpu(inst.cpu);
        if (node == inst.id % 2)
            on_home++;
    }
    // Most tasks execute on their home node (some may be stolen).
    EXPECT_GT(on_home, set.tasks.size() * 3 / 4);
}

TEST(Runtime, TraceFinalizesAndSpansMakespan)
{
    TaskSet set = workloads::buildForkJoin(5, 10, 40'000);
    RunResult result = RuntimeSystem(smallConfig()).run(set);
    ASSERT_TRUE(result.ok);
    EXPECT_TRUE(result.trace.finalized());
    EXPECT_EQ(result.trace.span().end, result.makespan);
    // Every worker timeline extends to the makespan (trailing idle).
    for (CpuId c = 0; c < result.trace.numCpus(); c++) {
        ASSERT_FALSE(result.trace.cpu(c).states().empty());
        EXPECT_EQ(result.trace.cpu(c).states().back().interval.end,
                  result.makespan);
    }
}

} // namespace
} // namespace runtime
} // namespace aftermath
