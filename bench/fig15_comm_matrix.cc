/**
 * @file
 * Fig 15: NUMA communication incidence matrix for seidel.
 *
 * The matrix shows the proportion of communication between each pair of
 * NUMA nodes as shades. Non-optimized: deep red everywhere — every node
 * talks to every node. Optimized: a very sharp diagonal — nearly all
 * accesses are node-local. The bench prints both matrices as ASCII art
 * and quantifies the diagonal fraction.
 */

#include <cstdio>

#include "common.h"

using namespace aftermath;

int
main()
{
    bench::banner("Fig 15", "seidel: communication incidence matrix");

    runtime::RunResult plain = bench::runSeidel(false);
    runtime::RunResult numa = bench::runSeidel(true);
    if (!plain.ok || !numa.ok) {
        std::fprintf(stderr, "simulation failed: %s%s\n",
                     plain.error.c_str(), numa.error.c_str());
        return 1;
    }

    stats::CommMatrix before = stats::CommMatrix::fromTrace(plain.trace);
    stats::CommMatrix after = stats::CommMatrix::fromTrace(numa.trace);

    std::printf("\nnon-optimized (%s total):\n%s\n",
                humanBytes(before.totalBytes()).c_str(),
                before.toAscii().c_str());
    std::printf("optimized (%s total):\n%s\n",
                humanBytes(after.totalBytes()).c_str(),
                after.toAscii().c_str());

    // Uniformity of the non-optimized matrix: every ordered pair moves
    // a nonzero share of traffic.
    std::uint32_t nonzero = 0;
    std::uint32_t nodes = before.numNodes();
    for (NodeId s = 0; s < nodes; s++)
        for (NodeId d = 0; d < nodes; d++)
            nonzero += before.bytes(s, d) > 0;
    double coverage = static_cast<double>(nonzero) /
                      static_cast<double>(nodes) / nodes;

    bench::row("non-optimized diagonal fraction",
               strFormat("%.2f (paper: uniform deep red)",
                         before.diagonalFraction()));
    bench::row("non-optimized pair coverage",
               strFormat("%.0f%% of node pairs communicate",
                         100 * coverage));
    bench::row("optimized diagonal fraction",
               strFormat("%.2f (paper: sharp diagonal)",
                         after.diagonalFraction()));
    bool shape = before.diagonalFraction() < 0.3 && coverage > 0.9 &&
                 after.diagonalFraction() > 0.7;
    bench::row("matrix contrast reproduced", shape ? "yes" : "NO");
    return shape ? 0 : 1;
}
