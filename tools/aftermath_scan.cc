/**
 * @file
 * aftermath-scan: print the ranked anomaly list of a trace.
 *
 * Runs the anomaly scanner (stats/anomaly.h) over a trace file and
 * prints one line per finding, most severe first:
 *
 *     aftermath-scan --trace FILE [--socket PATH] [--max-per-kind N]
 *                    [--z SIGMA] [--burst FACTOR] [--idle FRACTION]
 *
 * Without --socket the scan runs in-process through the Session query
 * plane. With --socket the request goes to a running aftermathd over
 * the wire protocol instead — the daemon opens (or shares) FILE on its
 * side and answers the exact same ranked list, byte-identical to the
 * local scan, which is also how the daemon round-trip is demoed by
 * hand.
 *
 * With --resolution the tool additionally prints the interval
 * statistics of the whole trace span at the requested resolution
 * (exact, budget:<time-units>, or pixels:<columns>), including the
 * provenance line telling whether the answer came from the summary
 * pyramids and at what granularity — the quickest way to see the
 * resolution-aware query plane at work on a real trace, locally or
 * over the wire.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "daemon/client.h"
#include "session/session.h"
#include "stats/anomaly.h"
#include "trace/reader.h"

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --trace FILE [--socket PATH] [options]\n"
        "  --trace FILE     trace file to scan (required)\n"
        "  --socket PATH    scan via the aftermathd at PATH instead of\n"
        "                   in-process\n"
        "  --max-per-kind N keep the N most severe findings per kind\n"
        "                   (default 20)\n"
        "  --z SIGMA        duration-outlier z-score threshold "
        "(default 3.0)\n"
        "  --burst FACTOR   counter-burst rate factor (default 4.0)\n"
        "  --idle FRACTION  idle-phase worker fraction (default 0.5)\n"
        "  --resolution R   also print whole-span interval statistics\n"
        "                   at resolution R: exact, budget:<time-units>\n"
        "                   or pixels:<columns>\n",
        argv0);
}

const char *
kindName(aftermath::stats::AnomalyKind kind)
{
    switch (kind) {
      case aftermath::stats::AnomalyKind::IdlePhase:
        return "idle ";
      case aftermath::stats::AnomalyKind::DurationOutlier:
        return "outlier";
      case aftermath::stats::AnomalyKind::CounterBurst:
        return "burst";
    }
    return "?";
}

void
printFindings(const std::vector<aftermath::stats::Anomaly> &findings)
{
    if (findings.empty()) {
        std::printf("no anomalies found\n");
        return;
    }
    for (const aftermath::stats::Anomaly &a : findings) {
        std::printf("%5.3f  %-7s  [%llu, %llu)  %s\n", a.severity,
                    kindName(a.kind),
                    static_cast<unsigned long long>(a.interval.start),
                    static_cast<unsigned long long>(a.interval.end),
                    a.description.c_str());
    }
}

/** Parse "exact", "budget:<ns>" or "pixels:<w>"; exits on garbage. */
aftermath::Resolution
parseResolution(const char *arg, const char *argv0)
{
    using aftermath::Resolution;
    if (std::strcmp(arg, "exact") == 0)
        return Resolution::exact();
    if (std::strncmp(arg, "budget:", 7) == 0) {
        char *end = nullptr;
        unsigned long long ns = std::strtoull(arg + 7, &end, 10);
        if (end != arg + 7 && *end == '\0')
            return Resolution::budget(ns);
    } else if (std::strncmp(arg, "pixels:", 7) == 0) {
        char *end = nullptr;
        unsigned long long w = std::strtoull(arg + 7, &end, 10);
        if (end != arg + 7 && *end == '\0' && w <= 0xffffffffull)
            return Resolution::pixels(static_cast<std::uint32_t>(w));
    }
    std::fprintf(stderr, "bad --resolution value: %s\n", arg);
    usage(argv0);
    std::exit(2);
}

void
printIntervalStats(const aftermath::stats::IntervalStats &stats)
{
    std::printf("interval stats over [%llu, %llu):\n",
                static_cast<unsigned long long>(stats.interval.start),
                static_cast<unsigned long long>(stats.interval.end));
    for (const auto &[state, time] : stats.timeInState)
        std::printf("  state %2u: %llu (%.1f%%)\n", state,
                    static_cast<unsigned long long>(time),
                    100.0 * stats.stateFraction(state));
    std::printf("  tasks started %llu, overlapping %llu\n",
                static_cast<unsigned long long>(stats.tasksStarted),
                static_cast<unsigned long long>(stats.tasksOverlapping));
    std::printf("  resolution: %s, granularity %llu, %llu pyramid "
                "nodes\n",
                stats.resolution.exact ? "exact" : "approximate",
                static_cast<unsigned long long>(
                    stats.resolution.granularityNs),
                static_cast<unsigned long long>(
                    stats.resolution.nodesTouched));
}

} // namespace

int
main(int argc, char **argv)
{
    std::string trace_path;
    std::string socket_path;
    bool want_stats = false;
    aftermath::Resolution resolution;
    aftermath::stats::AnomalyScanOptions options;

    for (int i = 1; i < argc; i++) {
        auto needValue = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a value\n", flag);
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--trace") == 0) {
            trace_path = needValue("--trace");
        } else if (std::strcmp(argv[i], "--socket") == 0) {
            socket_path = needValue("--socket");
        } else if (std::strcmp(argv[i], "--max-per-kind") == 0) {
            options.maxPerKind = static_cast<std::size_t>(
                std::strtoul(needValue("--max-per-kind"), nullptr, 10));
        } else if (std::strcmp(argv[i], "--z") == 0) {
            options.durationZScore = std::strtod(needValue("--z"), nullptr);
        } else if (std::strcmp(argv[i], "--burst") == 0) {
            options.burstFactor =
                std::strtod(needValue("--burst"), nullptr);
        } else if (std::strcmp(argv[i], "--idle") == 0) {
            options.idleWorkerFraction =
                std::strtod(needValue("--idle"), nullptr);
        } else if (std::strcmp(argv[i], "--resolution") == 0) {
            want_stats = true;
            resolution =
                parseResolution(needValue("--resolution"), argv[0]);
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if (trace_path.empty()) {
        usage(argv[0]);
        return 2;
    }

    if (!socket_path.empty()) {
        aftermath::daemon::Client client;
        std::string error;
        if (!client.connectUnix(socket_path, error)) {
            std::fprintf(stderr, "aftermath-scan: %s\n", error.c_str());
            return 1;
        }
        aftermath::daemon::OpenTraceRequest open;
        open.path = trace_path;
        auto opened = client.openTrace(open);
        if (!opened.ok()) {
            std::fprintf(stderr, "aftermath-scan: open failed: %s\n",
                         opened.message.c_str());
            return 1;
        }
        aftermath::daemon::AnomalyScanRequest request;
        request.head.traceId = opened.value.traceId;
        request.options = options;
        auto reply = client.anomalyScan(request);
        if (!reply.ok()) {
            std::fprintf(stderr, "aftermath-scan: scan failed: %s\n",
                         reply.message.c_str());
            return 1;
        }
        printFindings(reply.value);
        if (want_stats) {
            aftermath::daemon::IntervalStatsRequest stats_request;
            stats_request.head.traceId = opened.value.traceId;
            stats_request.interval = opened.value.span;
            stats_request.resolution = resolution;
            auto stats = client.intervalStats(stats_request);
            if (!stats.ok()) {
                std::fprintf(stderr, "aftermath-scan: stats failed: %s\n",
                             stats.message.c_str());
                return 1;
            }
            printIntervalStats(stats.value);
        }
        client.closeTrace(opened.value.traceId);
        return 0;
    }

    aftermath::trace::ReadResult read =
        aftermath::trace::readTraceFile(trace_path);
    if (!read.ok) {
        std::fprintf(stderr, "aftermath-scan: %s\n", read.error.c_str());
        return 1;
    }
    aftermath::session::Session session =
        aftermath::session::Session::view(read.trace);
    std::printf("%s: %u cpus, %zu task instances\n", trace_path.c_str(),
                read.trace.numCpus(), read.trace.taskInstances().size());
    printFindings(session.scanForAnomalies(options));
    if (want_stats) {
        aftermath::session::IntervalStatsQuery query{
            {session.trace().span(),
             aftermath::session::QueryPriority::Interactive, resolution}};
        printIntervalStats(session.submit(query).take());
    }
    return 0;
}
