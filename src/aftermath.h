/**
 * @file
 * Umbrella header: the full public API of the Aftermath reproduction.
 *
 * Include this to get the trace model and format, indexes, filters,
 * derived metrics, statistics, task-graph analysis, rendering, symbol
 * handling, and the runtime simulator with its workloads.
 */

#ifndef AFTERMATH_AFTERMATH_H
#define AFTERMATH_AFTERMATH_H

// Base utilities.
#include "base/logging.h"
#include "base/rng.h"
#include "base/string_util.h"
#include "base/time_interval.h"
#include "base/types.h"

// Trace model and file format.
#include "trace/counter.h"
#include "trace/cpu_timeline.h"
#include "trace/event.h"
#include "trace/format.h"
#include "trace/memory.h"
#include "trace/numa.h"
#include "trace/reader.h"
#include "trace/state.h"
#include "trace/task.h"
#include "trace/topology.h"
#include "trace/trace.h"
#include "trace/writer.h"

// Indexes.
#include "index/counter_index.h"

// Filters.
#include "filter/task_filter.h"

// Derived metrics.
#include "metrics/counter_utils.h"
#include "metrics/derived_counter.h"
#include "metrics/generators.h"
#include "metrics/task_attribution.h"

// Statistics.
#include "stats/anomaly.h"
#include "stats/comm_matrix.h"
#include "stats/export.h"
#include "stats/histogram.h"
#include "stats/interval_stats.h"
#include "stats/regression.h"

// Task graph.
#include "graph/critical_path.h"
#include "graph/depth.h"
#include "graph/dot_export.h"
#include "graph/task_graph.h"

// Rendering.
#include "render/color.h"
#include "render/counter_overlay.h"
#include "render/framebuffer.h"
#include "render/layout.h"
#include "render/render_stats.h"
#include "render/timeline_renderer.h"

// Symbols and annotations.
#include "symbols/annotations.h"
#include "symbols/symbol_table.h"

// Simulation substrate.
#include "machine/cost_model.h"
#include "machine/machine_spec.h"
#include "machine/region_placement.h"
#include "runtime/runtime_system.h"
#include "runtime/scheduler.h"
#include "runtime/task_set.h"
#include "sim/event_queue.h"

// Workloads.
#include "workloads/kmeans.h"
#include "workloads/seidel.h"
#include "workloads/synthetic.h"

#endif // AFTERMATH_AFTERMATH_H
