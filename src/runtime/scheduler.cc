#include "runtime/scheduler.h"

namespace aftermath {
namespace runtime {

Scheduler::Scheduler(const trace::MachineTopology &topology,
                     SchedulingPolicy policy, std::uint64_t seed)
    : topology_(topology), policy_(policy), rng_(seed)
{
    nodeRoundRobin_.assign(topology.numNodes(), 0);
}

CpuId
Scheduler::placeTask(const SimTask &task, CpuId ready_on_cpu)
{
    if (policy_ == SchedulingPolicy::NumaAware &&
        task.homeNode != kInvalidNode &&
        task.homeNode < topology_.numNodes()) {
        const auto &cpus = topology_.cpusOfNode(task.homeNode);
        if (!cpus.empty()) {
            std::uint32_t slot =
                nodeRoundRobin_[task.homeNode]++ %
                static_cast<std::uint32_t>(cpus.size());
            return cpus[slot];
        }
    }
    return ready_on_cpu;
}

CpuId
Scheduler::chooseVictim(CpuId thief, std::uint32_t attempt)
{
    std::uint32_t num_cpus = topology_.numCpus();
    if (num_cpus <= 1)
        return thief;

    if (policy_ == SchedulingPolicy::NumaAware) {
        // Probe same-node CPUs first, then fall back to random remote.
        NodeId node = topology_.nodeOfCpu(thief);
        const auto &local = topology_.cpusOfNode(node);
        if (attempt < local.size()) {
            CpuId candidate = local[attempt];
            if (candidate != thief)
                return candidate;
            // Skip over ourselves deterministically.
            return local[(attempt + 1) % local.size()];
        }
    }

    // Uniform random victim distinct from the thief.
    CpuId victim = static_cast<CpuId>(rng_.nextBounded(num_cpus - 1));
    if (victim >= thief)
        victim++;
    return victim;
}

CpuId
Scheduler::chooseSleeperToWake(const std::set<CpuId> &sleepers,
                               CpuId origin) const
{
    if (sleepers.empty())
        return kInvalidCpu;

    if (policy_ == SchedulingPolicy::NumaAware) {
        NodeId node = topology_.nodeOfCpu(origin);
        for (CpuId cpu : topology_.cpusOfNode(node)) {
            if (sleepers.count(cpu))
                return cpu;
        }
    }

    // Closest sleeper at or after the origin, wrapping around; this
    // spreads wake-ups deterministically without a shared counter.
    auto it = sleepers.lower_bound(origin);
    if (it == sleepers.end())
        it = sleepers.begin();
    return *it;
}

} // namespace runtime
} // namespace aftermath
