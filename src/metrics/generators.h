/**
 * @file
 * Generators of derived counters.
 *
 * Each generator reproduces one of the derived-metric menus of the paper:
 *
 *  - stateOccupancy(): "the evolution of the number of workers that are
 *    simultaneously in any given state" (section III-A, Fig 3). The
 *    execution is divided into a user-defined number of intervals; for
 *    each interval the time every worker spent in the state is summed and
 *    divided by the interval duration.
 *  - averageTaskDuration(): average duration of the tasks executing in
 *    each interval (section III-B, Fig 8).
 *  - differenceQuotient(): discrete derivative of a series (Fig 10, 18).
 *  - aggregateCounter(): converts per-worker counter data into global
 *    statistics by summing across workers (section III-B, Fig 10).
 *  - counterRatio(): pointwise ratio of two derived series ("ratio of
 *    hardware counters", section II-A group 5).
 */

#ifndef AFTERMATH_METRICS_GENERATORS_H
#define AFTERMATH_METRICS_GENERATORS_H

#include <cstdint>

#include "base/time_interval.h"
#include "metrics/derived_counter.h"
#include "trace/trace.h"

namespace aftermath {
namespace metrics {

/**
 * Average number of workers simultaneously in @p state per interval.
 *
 * @param trace Finalized trace.
 * @param state State id to count (e.g. CoreState::Idle).
 * @param num_intervals Number of equal subdivisions of the trace span.
 */
DerivedCounter stateOccupancy(const trace::Trace &trace, std::uint32_t state,
                              std::uint32_t num_intervals);

/**
 * Average duration (cycles) of tasks whose execution overlaps each
 * interval; 0 for intervals without any executing task.
 */
DerivedCounter averageTaskDuration(const trace::Trace &trace,
                                   std::uint32_t num_intervals);

/**
 * Discrete derivative of @p series: sample i holds
 * (v[i] - v[i-1]) / (t[i] - t[i-1]) placed at t[i].
 */
DerivedCounter differenceQuotient(const DerivedCounter &series);

/**
 * Sum of a raw counter across all workers, sampled per interval with step
 * interpolation (a per-worker counter becomes one global series).
 */
DerivedCounter aggregateCounter(const trace::Trace &trace, CounterId counter,
                                std::uint32_t num_intervals);

/**
 * Pointwise ratio a/b resampled at @p a's timestamps; samples where the
 * denominator is 0 are skipped.
 */
DerivedCounter counterRatio(const DerivedCounter &a, const DerivedCounter &b);

} // namespace metrics
} // namespace aftermath

#endif // AFTERMATH_METRICS_GENERATORS_H
