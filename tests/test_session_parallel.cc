/**
 * @file
 * Tests of the parallel session engine: the thread pool, concurrent
 * index warm-up (bit-identical to serial), warm-up idempotence, the
 * bounded stats memo, and SessionGroup's delta queries and shared-
 * framebuffer rendering. Built with TSan in CI to keep the concurrency
 * race-free.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "base/rng.h"
#include "base/thread_pool.h"
#include "render/color.h"
#include "render/framebuffer.h"
#include "session/compare.h"
#include "session/counter_index_cache.h"
#include "session/query_cache.h"
#include "session/session.h"
#include "session/session_group.h"
#include "stats/regression.h"
#include "trace/state.h"
#include "trace_builder.h"

namespace aftermath {
namespace session {
namespace {

constexpr std::uint32_t kExec =
    static_cast<std::uint32_t>(trace::CoreState::TaskExec);
constexpr std::uint32_t kIdle =
    static_cast<std::uint32_t>(trace::CoreState::Idle);

/** The shared counter-heavy fixture (see tests/trace_builder.h). */
trace::Trace
denseTrace(std::uint32_t cpus = 8, std::uint32_t counters = 3,
           int samples = 2'000, std::int64_t scale = 1)
{
    test_support::DenseTraceOptions options;
    options.cpus = cpus;
    options.counters = counters;
    options.samples = samples;
    options.scale = scale;
    return test_support::buildDenseTrace(options);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce)
{
    base::ThreadPool pool(4);
    EXPECT_EQ(pool.numWorkers(), 4u);
    std::vector<std::atomic<int>> touched(1000);
    pool.parallelFor(touched.size(), [&](std::size_t i) {
        touched[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < touched.size(); i++)
        ASSERT_EQ(touched[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForDegenerateSizes)
{
    base::ThreadPool pool(2);
    pool.parallelFor(0, [](std::size_t) { FAIL(); });
    int calls = 0;
    pool.parallelFor(1, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        calls++;
    });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, SubmitAndWaitDrainsQueue)
{
    base::ThreadPool pool(3);
    std::atomic<int> done{0};
    for (int i = 0; i < 64; i++)
        pool.submit([&] { done.fetch_add(1, std::memory_order_relaxed); });
    pool.wait();
    EXPECT_EQ(done.load(), 64);
    // Destruction after wait() must also be clean with queued work.
    for (int i = 0; i < 16; i++)
        pool.submit([&] { done.fetch_add(1, std::memory_order_relaxed); });
}

TEST(CounterIndexCache, ConcurrentGetsBuildEachIndexOnce)
{
    trace::Trace tr = denseTrace(4, 2, 500);
    CounterIndexCache cache(tr);
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; t++) {
        threads.emplace_back([&] {
            for (CpuId c = 0; c < tr.numCpus(); c++) {
                for (CounterId id = 0; id < 2; id++) {
                    index::MinMax mm = cache.query(c, id, {10, 900});
                    EXPECT_TRUE(mm.valid);
                }
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    CacheCounters counters = cache.counters();
    EXPECT_EQ(counters.builds, 8u); // 4 cpus x 2 counters, built once.
    EXPECT_EQ(counters.total(), 8u * 8u);
    EXPECT_EQ(cache.size(), 8u);
}

TEST(SessionParallel, ParallelWarmupBitIdenticalToSerial)
{
    trace::Trace tr = denseTrace();
    Session serial = Session::view(tr);
    Session parallel = Session::view(tr);
    parallel.setConcurrency({4});

    Session::WarmupStats serial_stats = serial.warmup();
    Session::WarmupStats parallel_stats = parallel.warmup();
    EXPECT_EQ(serial_stats.workers, 1u);
    EXPECT_EQ(parallel_stats.workers, 4u);
    EXPECT_EQ(serial_stats.indexesVisited, 8u * 3u);
    EXPECT_EQ(parallel_stats.indexesVisited, 8u * 3u);
    EXPECT_EQ(serial_stats.indexesBuilt, parallel_stats.indexesBuilt);
    EXPECT_EQ(serial.cacheStats().counterIndex.builds,
              parallel.cacheStats().counterIndex.builds);

    // Extrema agree exactly on random probes for every (cpu, counter).
    Rng rng(7);
    TimeStamp max_t = tr.span().end;
    for (CpuId c = 0; c < tr.numCpus(); c++) {
        for (CounterId id = 0; id < 3; id++) {
            for (int trial = 0; trial < 20; trial++) {
                TimeStamp a = rng.nextBounded(max_t);
                TimeInterval iv{a, a + 1 + rng.nextBounded(max_t / 2)};
                index::MinMax expect = serial.counterExtrema(c, id, iv);
                index::MinMax got = parallel.counterExtrema(c, id, iv);
                ASSERT_EQ(got.valid, expect.valid);
                if (expect.valid) {
                    ASSERT_EQ(got.min, expect.min);
                    ASSERT_EQ(got.max, expect.max);
                }
            }
        }
    }
}

TEST(SessionParallel, RepeatedWarmupIsIncrementallySkipped)
{
    trace::Trace tr = denseTrace(4, 2, 300);
    Session session = Session::view(tr);
    session.setConcurrency({3});
    Session::WarmupStats initial = session.warmup();
    EXPECT_EQ(initial.indexesVisited, 4u * 2u);
    EXPECT_EQ(initial.indexesSkipped, 0u);
    SessionCacheStats first = session.cacheStats();
    EXPECT_EQ(first.counterIndex.builds, 4u * 2u);
    EXPECT_EQ(first.intervalStats.builds, 1u);
    EXPECT_EQ(first.taskList.builds, 1u);

    for (int i = 0; i < 3; i++) {
        // Incremental re-warm-up: covered pairs are skipped outright
        // (the index cache is not even consulted), memoized stats and
        // task-list entries answer as hits.
        Session::WarmupStats repeat = session.warmup();
        EXPECT_EQ(repeat.indexesVisited, 0u);
        EXPECT_EQ(repeat.indexesSkipped, 4u * 2u);
        EXPECT_EQ(repeat.indexesBuilt, 0u);
    }
    SessionCacheStats later = session.cacheStats();
    EXPECT_EQ(later.counterIndex.builds, first.counterIndex.builds);
    EXPECT_EQ(later.counterIndex.hits, first.counterIndex.hits);
    EXPECT_EQ(later.intervalStats.builds, first.intervalStats.builds);
    EXPECT_EQ(later.taskList.builds, first.taskList.builds);
    EXPECT_GT(later.intervalStats.hits, first.intervalStats.hits);
    EXPECT_GT(later.taskList.hits, first.taskList.hits);

    // A view change re-warms only what the new view needs: the stats
    // of the new interval, no index revisits.
    session.setView({0, 120});
    Session::WarmupStats after_zoom = session.warmup();
    EXPECT_EQ(after_zoom.indexesVisited, 0u);
    EXPECT_EQ(after_zoom.indexesSkipped, 4u * 2u);
    EXPECT_EQ(session.cacheStats().intervalStats.builds,
              first.intervalStats.builds + 1);
    EXPECT_EQ(session.cacheStats().counterIndex.builds,
              first.counterIndex.builds);
}

TEST(SessionParallel, WarmupPolicyRestrictsCounters)
{
    trace::Trace tr = denseTrace(4, 3, 200);
    Session session = Session::view(tr);
    Session::WarmupPolicy policy;
    policy.counters = {1};
    policy.intervalStats = false;
    policy.taskList = false;
    Session::WarmupStats stats = session.warmup(policy);
    EXPECT_EQ(stats.indexesVisited, 4u);
    EXPECT_EQ(stats.indexesBuilt, 4u);
    EXPECT_EQ(session.cacheStats().intervalStats.total(), 0u);
    EXPECT_EQ(session.cacheStats().taskList.total(), 0u);
}

TEST(SessionParallel, HardwareDefaultWorkersWarmsUp)
{
    trace::Trace tr = denseTrace(4, 2, 200);
    Session session = Session::view(tr);
    session.setConcurrency({0}); // 0 = one worker per hardware thread.
    Session::WarmupStats stats = session.warmup();
    EXPECT_EQ(stats.indexesVisited, 8u);
    EXPECT_GE(stats.workers, 1u);
}

TEST(MemoCache, LruCapacityEvictsLeastRecentlyUsed)
{
    MemoCache<int, int> cache;
    cache.setCapacity(2);
    auto build = [](int v) { return [v] { return v; }; };
    cache.getOrBuild(1, build(10));
    cache.getOrBuild(2, build(20));
    cache.getOrBuild(1, build(10)); // 1 becomes most recently used.
    cache.getOrBuild(3, build(30)); // Evicts 2.
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.counters().evictions, 1u);
    EXPECT_EQ(cache.counters().builds, 3u);

    cache.getOrBuild(2, build(20)); // Rebuild; evicts 1 (LRU).
    EXPECT_EQ(cache.counters().builds, 4u);
    cache.getOrBuild(3, build(30));
    EXPECT_EQ(cache.counters().hits, 2u); // 1 earlier + this one.

    cache.setCapacity(1); // Shrink evicts immediately.
    EXPECT_EQ(cache.size(), 1u);
    cache.setCapacity(0); // Unbounded again.
    cache.getOrBuild(5, build(50));
    cache.getOrBuild(6, build(60));
    EXPECT_EQ(cache.size(), 3u);
}

TEST(SessionParallel, StatsCacheCapacityBoundsMemo)
{
    trace::Trace tr = denseTrace(2, 1, 100);
    Session session = Session::view(tr);
    session.setStatsCacheCapacity(2);
    session.intervalStats({0, 10});
    session.intervalStats({0, 20});
    session.intervalStats({0, 30}); // Evicts {0, 10}.
    EXPECT_EQ(session.cacheStats().intervalStats.builds, 3u);

    session.intervalStats({0, 30}); // Hit.
    EXPECT_EQ(session.cacheStats().intervalStats.hits, 1u);
    session.intervalStats({0, 10}); // Evicted: rebuilt.
    EXPECT_EQ(session.cacheStats().intervalStats.builds, 4u);
    EXPECT_EQ(session.cacheStats().intervalStats.evictions, 2u);
}

/** Two variants whose counter values and task lengths differ. */
class SessionGroupTest : public ::testing::Test
{
  protected:
    trace::Trace base_ = denseTrace(4, 2, 400, 1);
    trace::Trace variant_ = denseTrace(4, 2, 400, 3);
    SessionGroup group_;

    void
    SetUp() override
    {
        group_.add("base", Session::view(base_));
        group_.add("variant", Session::view(variant_));
    }
};

TEST_F(SessionGroupTest, AlignedStateFansOut)
{
    filter::FilterSet f;
    f.add(std::make_shared<filter::DurationFilter>(150, kTimeMax));
    group_.setFilters(f);
    group_.setView({0, 100});
    for (std::size_t i = 0; i < group_.size(); i++) {
        EXPECT_EQ(group_.session(i).filters().size(), 1u);
        EXPECT_EQ(group_.session(i).view(), TimeInterval(0, 100));
    }
    group_.clearFilters();
    EXPECT_EQ(group_.session(0).filters().size(), 0u);
    EXPECT_EQ(group_.label(0), "base");
    EXPECT_EQ(group_.label(1), "variant");
}

TEST_F(SessionGroupTest, IntervalStatsDeltaMatchesHandComputation)
{
    group_.setView({0, 200});
    compare::IntervalStatsDelta delta = group_.intervalStatsDelta(0, 1);

    Session a = Session::view(base_);
    Session b = Session::view(variant_);
    const stats::IntervalStats &sa = a.intervalStats({0, 200});
    const stats::IntervalStats &sb = b.intervalStats({0, 200});
    for (const auto &[state, d] : delta.timeInState) {
        std::int64_t expect =
            static_cast<std::int64_t>(
                sb.timeInState.count(state) ? sb.timeInState.at(state)
                                            : 0) -
            static_cast<std::int64_t>(
                sa.timeInState.count(state) ? sa.timeInState.at(state)
                                            : 0);
        EXPECT_EQ(d, expect) << "state " << state;
    }
    EXPECT_EQ(delta.tasksOverlapping,
              static_cast<std::int64_t>(sb.tasksOverlapping) -
                  static_cast<std::int64_t>(sa.tasksOverlapping));
    EXPECT_EQ(delta.tasksStarted,
              static_cast<std::int64_t>(sb.tasksStarted) -
                  static_cast<std::int64_t>(sa.tasksStarted));
    ASSERT_GT(sb.totalTime(), 0u);
    EXPECT_DOUBLE_EQ(delta.totalTimeRatio,
                     static_cast<double>(sa.totalTime()) /
                         static_cast<double>(sb.totalTime()));
    EXPECT_EQ(delta.intervalA, TimeInterval(0, 200));
    EXPECT_EQ(delta.intervalB, TimeInterval(0, 200));
}

TEST_F(SessionGroupTest, PairedHistogramsShareOneBinGrid)
{
    compare::PairedHistograms paired = group_.pairedHistograms(8);
    ASSERT_EQ(paired.variants.size(), 2u);
    EXPECT_EQ(paired.variants[0].numBins(), 8u);
    EXPECT_EQ(paired.variants[0].rangeMin(),
              paired.variants[1].rangeMin());
    EXPECT_EQ(paired.variants[0].rangeMax(),
              paired.variants[1].rangeMax());
    EXPECT_EQ(paired.variants[0].rangeMin(), paired.rangeMin);
    EXPECT_EQ(paired.variants[0].rangeMax(), paired.rangeMax);

    // Equals hand-built histograms over the shared range.
    for (std::size_t v = 0; v < 2; v++) {
        std::vector<double> durations;
        for (const trace::TaskInstance *task :
             group_.session(v).tasks())
            durations.push_back(static_cast<double>(task->duration()));
        stats::Histogram expect = stats::Histogram::fromValues(
            durations, 8, paired.rangeMin, paired.rangeMax);
        for (std::uint32_t bin = 0; bin < 8; bin++)
            EXPECT_EQ(paired.variants[v].count(bin), expect.count(bin))
                << "variant " << v << " bin " << bin;
    }

    // countDelta is the signed per-bin difference.
    for (std::uint32_t bin = 0; bin < 8; bin++) {
        EXPECT_EQ(paired.countDelta(0, 1, bin),
                  static_cast<std::int64_t>(
                      paired.variants[1].count(bin)) -
                      static_cast<std::int64_t>(
                          paired.variants[0].count(bin)));
    }
}

TEST_F(SessionGroupTest, RegressionRowsMatchPerSessionComputation)
{
    std::vector<compare::RegressionRow> rows = group_.regressionRows(0);
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].label, "base");
    EXPECT_EQ(rows[1].label, "variant");

    for (std::size_t v = 0; v < 2; v++) {
        auto increases = group_.session(v).taskCounterIncreases(0);
        ASSERT_EQ(rows[v].tasks, increases.size());
        std::vector<double> rates, durations;
        for (const auto &inc : increases) {
            rates.push_back(inc.ratePerKcycle());
            durations.push_back(static_cast<double>(inc.duration));
        }
        EXPECT_DOUBLE_EQ(rows[v].meanDuration, stats::mean(durations));
        EXPECT_DOUBLE_EQ(rows[v].stddevDuration,
                         stats::stddev(durations));
        stats::Regression expect =
            stats::linearRegression(rates, durations);
        EXPECT_EQ(rows[v].fit.valid, expect.valid);
        EXPECT_DOUBLE_EQ(rows[v].fit.slope, expect.slope);
        EXPECT_DOUBLE_EQ(rows[v].fit.r2, expect.r2);
    }
}

TEST_F(SessionGroupTest, SideBySideBandsEqualPerSessionRenders)
{
    render::TimelineConfig config;
    render::Framebuffer fb(96, 32);
    group_.renderSideBySide(config, fb);

    for (std::size_t v = 0; v < 2; v++) {
        render::Framebuffer band(96, 16);
        Session solo = Session::view(v == 0 ? base_ : variant_);
        solo.render(config, band);
        for (std::uint32_t y = 0; y < 16; y += 3) {
            for (std::uint32_t x = 0; x < 96; x += 5) {
                ASSERT_EQ(fb.pixel(x, v * 16 + y), band.pixel(x, y))
                    << "variant " << v << " pixel (" << x << ", " << y
                    << ")";
            }
        }
    }
}

TEST_F(SessionGroupTest, DiffHighlightsOnlyDifferingPixels)
{
    render::TimelineConfig config;

    // Identical variants: no highlight anywhere, gray context only.
    SessionGroup same;
    same.add("a", Session::view(base_));
    same.add("b", Session::view(base_));
    render::Framebuffer same_fb(64, 24);
    same.renderDiff(0, 1, config, same_fb);
    EXPECT_EQ(same_fb.countPixels(SessionGroup::kDiffHighlight), 0u);

    // Differing variants (different task lengths): some highlight, and
    // every non-highlight pixel is gray (r == g == b).
    render::Framebuffer diff_fb(64, 24);
    group_.renderDiff(0, 1, config, diff_fb);
    EXPECT_GT(diff_fb.countPixels(SessionGroup::kDiffHighlight), 0u);
    for (std::uint32_t y = 0; y < diff_fb.height(); y++) {
        for (std::uint32_t x = 0; x < diff_fb.width(); x++) {
            render::Rgba p = diff_fb.pixel(x, y);
            if (!(p == SessionGroup::kDiffHighlight)) {
                ASSERT_EQ(p.r, p.g);
                ASSERT_EQ(p.g, p.b);
            }
        }
    }
}

TEST_F(SessionGroupTest, GroupWarmupWarmsEveryVariant)
{
    group_.setConcurrency({2});
    std::vector<Session::WarmupStats> stats = group_.warmup();
    ASSERT_EQ(stats.size(), 2u);
    for (const Session::WarmupStats &s : stats) {
        EXPECT_EQ(s.indexesVisited, 4u * 2u);
        EXPECT_EQ(s.workers, 2u);
    }
    for (std::size_t i = 0; i < group_.size(); i++)
        EXPECT_EQ(group_.session(i).cacheStats().counterIndex.builds,
                  8u);
}

} // namespace
} // namespace session
} // namespace aftermath
