/**
 * @file
 * Fig 2: seidel timeline in state mode.
 *
 * The paper shows dark blue (task execution) dominating, with two light
 * blue vertical idle bands: one in the first quarter of the execution and
 * one at the end. This bench renders the state timeline to a PPM image
 * and quantifies the bands: the idle fraction per execution decile must
 * peak in an early decile and in the final decile.
 */

#include <cstdio>

#include "common.h"

using namespace aftermath;

int
main()
{
    bench::banner("Fig 2", "seidel: timeline in state mode (idle bands)");

    runtime::RunResult result = bench::runSeidel(false);
    if (!result.ok) {
        std::fprintf(stderr, "simulation failed: %s\n",
                     result.error.c_str());
        return 1;
    }
    const trace::Trace &tr = result.trace;
    Session session = Session::view(tr);

    render::Framebuffer fb(1200, 576);
    session.render({}, fb);
    std::string error;
    if (fb.writePpmFile("fig02_states.ppm", error))
        std::printf("wrote fig02_states.ppm\n");

    constexpr std::uint32_t kIdle =
        static_cast<std::uint32_t>(trace::CoreState::Idle);
    constexpr std::uint32_t kExec =
        static_cast<std::uint32_t>(trace::CoreState::TaskExec);

    std::printf("\ndecile, exec_fraction, idle_fraction\n");
    double idle[10];
    TimeInterval span = tr.span();
    for (int d = 0; d < 10; d++) {
        TimeInterval iv{span.start + span.duration() * d / 10,
                        span.start + span.duration() * (d + 1) / 10};
        const stats::IntervalStats &s = session.intervalStats(iv);
        idle[d] = s.stateFraction(kIdle);
        std::printf("%d, %.3f, %.3f\n", d, s.stateFraction(kExec),
                    idle[d]);
    }

    const stats::IntervalStats &whole = session.intervalStats(span);
    double exec_total = whole.stateFraction(kExec);

    // The paper's shape: execution dominates overall; an early idle band
    // (one of deciles 0-3 clearly above the mid-run level) and a final
    // idle band (last decile above mid-run).
    double mid = (idle[4] + idle[5] + idle[6]) / 3.0;
    double early_peak = std::max(std::max(idle[0], idle[1]),
                                 std::max(idle[2], idle[3]));
    bool shape = exec_total > 0.5 && early_peak > mid + 0.05 &&
                 idle[9] > mid + 0.05;

    std::printf("\n");
    bench::row("overall task execution fraction",
               strFormat("%.1f%% (paper: dark blue dominates)",
                         100 * exec_total));
    bench::row("early idle band peak (deciles 0-3)",
               strFormat("%.1f%% vs mid-run %.1f%%", 100 * early_peak,
                         100 * mid));
    bench::row("final idle band (decile 9)",
               strFormat("%.1f%%", 100 * idle[9]));
    bench::row("two idle bands detected", shape ? "yes" : "NO");
    return shape ? 0 : 1;
}
