#!/usr/bin/env python3
"""Bench-regression gate: compare BENCH_*.json metrics against baselines.

Every bench binary writes one JSON object per metric (JSON lines) into
the bench-out directory (bench/common.cc, JsonLines). This tool loads
each committed baseline from bench/baselines/<bench>.json and checks
the measured metrics against its thresholds, failing the CI job on any
regression.

Baseline schema::

    {
      "bench": "sec7_async_queries",
      "checks": [
        {"metric": "identical", "min": 1},
        {"metric": "speedup_w4", "min": 2.0,
         "when": {"metric": "hardware_threads", "min": 4},
         "skip_marker": "skipped_w4"}
      ]
    }

Check semantics:
  - "min" / "max": inclusive bounds on the measured value.
  - "when": the check only applies when the named metric satisfies the
    given bounds (e.g. speedup floors only on >= 4-thread runners).
    A missing "when" metric skips the check (conservative: a bench
    that cannot tell its environment is not failed for it).
  - "skip_marker": the bench emitted this metric (truthy) to say the
    measurement was deliberately skipped (e.g. worker counts above the
    hardware concurrency); the check is skipped, not failed.
  - A metric missing without an applicable skip is a failure: silence
    must never read as "covered".

Exit status: 0 when every applicable check passes, 1 otherwise.
"""

import argparse
import json
import sys
from pathlib import Path


def load_results(path):
    """Parse one JSON-lines bench output into {metric: value}."""
    metrics = {}
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise SystemExit(f"{path}:{lineno}: invalid JSON: {exc}")
        metrics[obj["metric"]] = obj["value"]
    return metrics


def bounds_ok(value, check):
    if "min" in check and value < check["min"]:
        return False
    if "max" in check and value > check["max"]:
        return False
    return True


def bounds_str(check):
    parts = []
    if "min" in check:
        parts.append(f">= {check['min']}")
    if "max" in check:
        parts.append(f"<= {check['max']}")
    return " and ".join(parts) if parts else "(no bounds)"


def run_checks(bench, checks, metrics, report):
    """Evaluate one baseline; returns the number of failures."""
    failures = 0
    for check in checks:
        name = check["metric"]
        label = f"{bench}:{name}"

        marker = check.get("skip_marker")
        if marker is not None and metrics.get(marker):
            report.append(("SKIP", label, f"bench marked {marker}"))
            continue

        when = check.get("when")
        if when is not None:
            gate_value = metrics.get(when["metric"])
            if gate_value is None or not bounds_ok(gate_value, when):
                report.append(
                    ("SKIP", label,
                     f"condition {when['metric']} {bounds_str(when)} "
                     f"not met (value: {gate_value})"))
                continue

        value = metrics.get(name)
        if value is None:
            report.append(("FAIL", label, "metric missing from output"))
            failures += 1
            continue
        if bounds_ok(value, check):
            report.append(
                ("PASS", label, f"{value:g} {bounds_str(check)}"))
        else:
            report.append(
                ("FAIL", label,
                 f"{value:g} violates {bounds_str(check)}"))
            failures += 1
    return failures


def main():
    parser = argparse.ArgumentParser(
        description="Gate CI on bench metrics vs committed baselines.")
    parser.add_argument("--bench-out", default="bench-out",
                        help="directory of BENCH_*.json results")
    parser.add_argument("--baselines", default="bench/baselines",
                        help="directory of committed baseline files")
    parser.add_argument("--bench", action="append", default=None,
                        help="restrict to these bench names "
                             "(default: every baseline present)")
    args = parser.parse_args()

    baseline_dir = Path(args.baselines)
    out_dir = Path(args.bench_out)
    if not baseline_dir.is_dir():
        raise SystemExit(f"no baseline directory at {baseline_dir}")

    baseline_files = sorted(baseline_dir.glob("*.json"))
    if args.bench:
        wanted = set(args.bench)
        baseline_files = [p for p in baseline_files if p.stem in wanted]
    if not baseline_files:
        raise SystemExit("no baselines selected — nothing to gate")

    report = []
    failures = 0
    for baseline_path in baseline_files:
        baseline = json.loads(baseline_path.read_text())
        bench = baseline["bench"]
        result_path = out_dir / f"BENCH_{bench}.json"
        if not result_path.is_file():
            report.append(("FAIL", bench,
                           f"no results at {result_path} — did the "
                           f"bench run with AFTERMATH_BENCH_OUT set?"))
            failures += 1
            continue
        metrics = load_results(result_path)
        failures += run_checks(bench, baseline["checks"], metrics,
                               report)

    width = max(len(label) for _, label, _ in report)
    for status, label, detail in report:
        print(f"{status:4}  {label:<{width}}  {detail}")
    print(f"\n{len(report)} checks, {failures} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
