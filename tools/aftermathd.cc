/**
 * @file
 * aftermathd: the trace-serving daemon's entry point.
 *
 * Serves traces to daemon::Client connections over a Unix-domain
 * socket (daemon/server.h):
 *
 *     aftermathd --socket /tmp/aftermath.sock [--workers N] [--cap K]
 *
 * One QueryEngine serves every client; clients opening the same trace
 * file share its caches. SIGINT/SIGTERM shut the daemon down cleanly
 * (in-flight work is cancelled and waited out) and print the session's
 * request counters.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "daemon/server.h"

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --socket PATH [--workers N] [--cap K]\n"
        "  --socket PATH  Unix-domain socket to listen on (required)\n"
        "  --workers N    query-engine worker threads (0 = one per\n"
        "                 hardware thread; default 0)\n"
        "  --cap K        per-client in-flight request cap (default 16)\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socket_path;
    aftermath::daemon::Server::Options options;
    options.workers = 0;

    for (int i = 1; i < argc; i++) {
        auto needValue = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a value\n", flag);
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--socket") == 0) {
            socket_path = needValue("--socket");
        } else if (std::strcmp(argv[i], "--workers") == 0) {
            options.workers = static_cast<unsigned>(
                std::strtoul(needValue("--workers"), nullptr, 10));
        } else if (std::strcmp(argv[i], "--cap") == 0) {
            options.inflightCap = static_cast<std::uint32_t>(
                std::strtoul(needValue("--cap"), nullptr, 10));
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if (socket_path.empty() || options.inflightCap == 0) {
        usage(argv[0]);
        return 2;
    }

    // Block the shutdown signals before any thread spawns so they are
    // delivered to sigwait below, not to a connection thread.
    sigset_t signals;
    sigemptyset(&signals);
    sigaddset(&signals, SIGINT);
    sigaddset(&signals, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &signals, nullptr);

    aftermath::daemon::Server server(options);
    std::string error;
    if (!server.serveUnix(socket_path, error)) {
        std::fprintf(stderr, "aftermathd: %s\n", error.c_str());
        return 1;
    }
    std::printf("aftermathd: serving on %s (cap %u per client)\n",
                socket_path.c_str(), options.inflightCap);
    std::fflush(stdout);

    int caught = 0;
    sigwait(&signals, &caught);
    std::printf("aftermathd: signal %d, shutting down\n", caught);
    server.stop();

    aftermath::daemon::Server::Stats stats = server.stats();
    std::printf("aftermathd: served %llu requests over %llu connections "
                "(%llu rejected, %llu protocol errors, %llu reaped on "
                "disconnect)\n",
                static_cast<unsigned long long>(stats.requests),
                static_cast<unsigned long long>(stats.connectionsAccepted),
                static_cast<unsigned long long>(stats.rejected),
                static_cast<unsigned long long>(stats.protocolErrors),
                static_cast<unsigned long long>(
                    stats.cancelledOnDisconnect));
    return 0;
}
