/**
 * @file
 * Tests of the session facade: lazy index construction, cache
 * invalidation on filter changes and trace swaps, and equivalence of
 * facade results with the legacy free-function paths.
 */

#include <gtest/gtest.h>

#include <memory>
#include <unordered_set>

#include "base/rng.h"
#include "filter/task_filter.h"
#include "index/counter_index.h"
#include "metrics/counter_utils.h"
#include "metrics/task_attribution.h"
#include "render/framebuffer.h"
#include "render/timeline_renderer.h"
#include "runtime/runtime_system.h"
#include "session/session.h"
#include "stats/histogram.h"
#include "stats/interval_stats.h"
#include "trace/state.h"
#include "workloads/synthetic.h"

namespace aftermath {
namespace session {
namespace {

constexpr std::uint32_t kExec =
    static_cast<std::uint32_t>(trace::CoreState::TaskExec);
constexpr std::uint32_t kIdle =
    static_cast<std::uint32_t>(trace::CoreState::Idle);
constexpr CounterId kCtr = 7;

/** Two CPUs with states, tasks and a sampled counter. */
trace::Trace
smallTrace(std::int64_t counter_scale = 1)
{
    trace::Trace tr;
    tr.setTopology(trace::MachineTopology::uniform(2, 1));
    tr.cpu(0).addState({{0, 60}, kExec, 0});
    tr.cpu(0).addState({{60, 100}, kIdle, kInvalidTaskInstance});
    tr.cpu(1).addState({{0, 100}, kExec, 1});
    tr.addTaskType({0xa, "w"});
    tr.addTaskInstance({0, 0xa, 0, {0, 60}});
    tr.addTaskInstance({1, 0xa, 1, {0, 100}});
    for (TimeStamp t = 0; t <= 100; t += 5) {
        std::int64_t v = static_cast<std::int64_t>(t) * counter_scale;
        tr.cpu(0).addCounterSample(kCtr, {t, v});
        tr.cpu(1).addCounterSample(kCtr, {t, -v});
    }
    std::string err;
    EXPECT_TRUE(tr.finalize(err)) << err;
    return tr;
}

TEST(Session, LazyCounterIndexBuiltOncePerCpuCounter)
{
    Session session(smallTrace());
    EXPECT_EQ(session.cacheStats().counterIndex.builds, 0u);

    for (int i = 0; i < 5; i++)
        session.counterExtrema(0, kCtr, {0, 50});
    EXPECT_EQ(session.cacheStats().counterIndex.builds, 1u);
    EXPECT_EQ(session.cacheStats().counterIndex.hits, 4u);

    // A different CPU is a different index; the first one stays cached.
    session.counterExtrema(1, kCtr, {0, 50});
    session.counterExtrema(1, kCtr, {10, 90});
    EXPECT_EQ(session.cacheStats().counterIndex.builds, 2u);
    session.counterIndex(0, kCtr);
    EXPECT_EQ(session.cacheStats().counterIndex.builds, 2u);
}

TEST(Session, CounterExtremaMatchesDirectIndex)
{
    trace::Trace tr = smallTrace();
    index::CounterIndex direct(tr.cpu(0).counterSamples(kCtr));
    Session session(std::move(tr));

    for (auto iv : {TimeInterval{0, 101}, {5, 20}, {20, 21}, {90, 200},
                    {101, 300}}) {
        index::MinMax expect = direct.query(iv);
        index::MinMax got = session.counterExtrema(0, kCtr, iv);
        ASSERT_EQ(got.valid, expect.valid);
        if (expect.valid) {
            EXPECT_EQ(got.min, expect.min);
            EXPECT_EQ(got.max, expect.max);
        }
    }
}

TEST(Session, CounterExtremaUnknownCpuOrCounterIsInvalid)
{
    Session session(smallTrace());
    EXPECT_FALSE(session.counterExtrema(99, kCtr, {0, 100}).valid);
    EXPECT_FALSE(session.counterExtrema(kInvalidCpu, kCtr,
                                        {0, 100}).valid);
    EXPECT_FALSE(session.counterExtrema(0, 999, {0, 100}).valid);
}

TEST(Session, IntervalStatsMemoizedPerInterval)
{
    Session session(smallTrace());
    const stats::IntervalStats &a = session.intervalStats({0, 100});
    const stats::IntervalStats &b = session.intervalStats({0, 100});
    EXPECT_EQ(&a, &b); // Same cached object.
    EXPECT_EQ(session.cacheStats().intervalStats.builds, 1u);
    EXPECT_EQ(session.cacheStats().intervalStats.hits, 1u);

    session.intervalStats({0, 50});
    EXPECT_EQ(session.cacheStats().intervalStats.builds, 2u);

    EXPECT_EQ(a.timeInState.at(kExec), 160u);
    EXPECT_EQ(a.timeInState.at(kIdle), 40u);
    EXPECT_EQ(a.tasksOverlapping, 2u);
}

TEST(Session, ViewDefaultsToSpanAndDrivesQueries)
{
    Session session(smallTrace());
    EXPECT_EQ(session.view(), session.trace().span());

    session.setView({0, 50});
    EXPECT_EQ(session.view(), TimeInterval(0, 50));
    EXPECT_EQ(session.intervalStats().interval, TimeInterval(0, 50));

    index::MinMax mm = session.counterExtrema(0, kCtr);
    ASSERT_TRUE(mm.valid);
    EXPECT_EQ(mm.max, 45); // Last sample before t=50.

    session.setView({});
    EXPECT_EQ(session.view(), session.trace().span());
}

TEST(Session, SetFiltersInvalidatesTaskListButNotIndexes)
{
    Session session(smallTrace());
    EXPECT_EQ(session.tasks().size(), 2u);
    EXPECT_EQ(session.cacheStats().taskList.builds, 1u);
    session.tasks();
    EXPECT_EQ(session.cacheStats().taskList.hits, 1u);

    session.counterExtrema(0, kCtr, {0, 100});
    std::uint64_t index_builds = session.cacheStats().counterIndex.builds;

    filter::FilterSet longer;
    longer.add(std::make_shared<filter::DurationFilter>(90, 1000));
    session.setFilters(longer);
    EXPECT_EQ(session.filterGeneration(), 1u);

    EXPECT_EQ(session.tasks().size(), 1u);
    EXPECT_EQ(session.tasks().front()->id, 1u);
    EXPECT_EQ(session.cacheStats().taskList.builds, 2u);

    // Filter-independent caches survived.
    session.counterExtrema(0, kCtr, {0, 100});
    EXPECT_EQ(session.cacheStats().counterIndex.builds, index_builds);

    session.clearFilters();
    EXPECT_EQ(session.filterGeneration(), 2u);
    EXPECT_EQ(session.tasks().size(), 2u);
}

TEST(Session, TasksWithPredicateComposesWithFilters)
{
    Session session(smallTrace());
    auto on_cpu1 = session.tasks([](const trace::TaskInstance &task) {
        return task.cpu == 1;
    });
    ASSERT_EQ(on_cpu1.size(), 1u);
    EXPECT_EQ(on_cpu1[0]->id, 1u);

    filter::FilterSet shorter;
    shorter.add(std::make_shared<filter::DurationFilter>(0, 70));
    session.setFilters(shorter);
    // Predicate applies on top of the active filters: no task is both
    // short and on cpu 1.
    EXPECT_TRUE(session.tasks([](const trace::TaskInstance &task) {
        return task.cpu == 1;
    }).empty());
}

TEST(Session, TraceSwapDropsEveryCache)
{
    Session session(smallTrace(1));
    session.counterExtrema(0, kCtr, {0, 100});
    session.intervalStats({0, 100});
    session.tasks();
    std::uint64_t builds_before = session.cacheStats().counterIndex.builds;
    EXPECT_EQ(builds_before, 1u);

    session.setTrace(smallTrace(3));
    // Counter data changed; the facade must re-index, not serve stale
    // extrema. Accounting is cumulative across the swap.
    index::MinMax mm = session.counterExtrema(0, kCtr, {0, 101});
    ASSERT_TRUE(mm.valid);
    EXPECT_EQ(mm.max, 300);
    EXPECT_EQ(session.cacheStats().counterIndex.builds, builds_before + 1);

    EXPECT_EQ(session.intervalStats({0, 100}).timeInState.at(kExec), 160u);
    EXPECT_EQ(session.cacheStats().intervalStats.builds, 2u);
    EXPECT_EQ(session.tasks().size(), 2u);
}

TEST(Session, OwningAndViewModesSeeTheSameTrace)
{
    trace::Trace tr = smallTrace();
    Session borrowed = Session::view(tr);
    EXPECT_EQ(&borrowed.trace(), &tr);

    Session owning(smallTrace());
    EXPECT_EQ(owning.trace().numCpus(), tr.numCpus());
}

/** Facade results equal independent hand-rolled computations. */
class SessionEquivalence : public ::testing::Test
{
  protected:
    static trace::Trace workload_;

    static void
    SetUpTestSuite()
    {
        runtime::RuntimeConfig config;
        config.machine = machine::MachineSpec::small(2, 4);
        config.seed = 99;
        runtime::RunResult result = runtime::RuntimeSystem(config).run(
            workloads::buildForkJoin(4, 24, 150'000));
        ASSERT_TRUE(result.ok) << result.error;
        workload_ = std::move(result.trace);
    }
};

trace::Trace SessionEquivalence::workload_;

TEST_F(SessionEquivalence, IntervalStatsMatchBruteForce)
{
    Session session = Session::view(workload_);
    TimeInterval span = workload_.span();
    for (auto iv : {span, TimeInterval{span.end / 4, span.end / 2},
                    TimeInterval{0, 1}}) {
        // Independent full-scan computation (no slicing, no session).
        std::map<std::uint32_t, TimeStamp> time_in_state;
        for (CpuId c = 0; c < workload_.numCpus(); c++) {
            for (const trace::StateEvent &ev : workload_.cpu(c).states()) {
                TimeStamp overlap = ev.interval.overlapDuration(iv);
                if (overlap > 0)
                    time_in_state[ev.state] += overlap;
            }
        }
        std::uint64_t overlapping = 0, started = 0;
        for (const trace::TaskInstance &task : workload_.taskInstances()) {
            if (task.interval.overlaps(iv)) {
                overlapping++;
                if (iv.contains(task.interval.start))
                    started++;
            }
        }

        const stats::IntervalStats &facade = session.intervalStats(iv);
        for (const auto &[state, time] : time_in_state)
            EXPECT_EQ(facade.timeInState.at(state), time)
                << "state " << state;
        for (const auto &[state, time] : facade.timeInState) {
            if (time > 0) {
                EXPECT_EQ(time_in_state[state], time)
                    << "state " << state;
            }
        }
        EXPECT_EQ(facade.tasksOverlapping, overlapping);
        EXPECT_EQ(facade.tasksStarted, started);
    }
}

TEST_F(SessionEquivalence, FilteredTasksMatchHandFilter)
{
    Session session = Session::view(workload_);
    filter::FilterSet f;
    f.add(std::make_shared<filter::CpuFilter>(
        std::unordered_set<CpuId>{0, 3, 5}));

    std::vector<const trace::TaskInstance *> expected;
    for (const trace::TaskInstance &task : workload_.taskInstances()) {
        if (f.matches(workload_, task))
            expected.push_back(&task);
    }
    ASSERT_FALSE(expected.empty());

    session.setFilters(f);
    EXPECT_EQ(session.tasks(), expected);
    EXPECT_EQ(session.tasksMatching(f), expected);
}

TEST_F(SessionEquivalence, HistogramMatchesFromValues)
{
    Session session = Session::view(workload_);
    std::vector<double> durations;
    for (const trace::TaskInstance &task : workload_.taskInstances())
        durations.push_back(static_cast<double>(task.duration()));
    stats::Histogram expected = stats::Histogram::fromValues(durations, 12);

    stats::Histogram facade = session.histogram(12);
    ASSERT_EQ(facade.numBins(), expected.numBins());
    EXPECT_EQ(facade.total(), expected.total());
    for (std::uint32_t i = 0; i < expected.numBins(); i++)
        EXPECT_EQ(facade.count(i), expected.count(i)) << "bin " << i;
}

TEST_F(SessionEquivalence, TaskCounterIncreasesMatchHandAttribution)
{
    Session session = Session::view(workload_);
    CounterId counter = 0;
    for (CpuId c = 0; c < workload_.numCpus(); c++) {
        auto ids = workload_.cpu(c).counterIds();
        if (!ids.empty()) {
            counter = ids[0];
            break;
        }
    }
    // Hand attribution: value right before start minus right before end.
    std::vector<metrics::TaskCounterIncrease> expected;
    for (const trace::TaskInstance &task : workload_.taskInstances()) {
        const trace::CpuTimeline *tl = workload_.cpuOrNull(task.cpu);
        if (!tl)
            continue;
        auto before =
            metrics::counterValueAt(*tl, counter, task.interval.start);
        auto after =
            metrics::counterValueAt(*tl, counter, task.interval.end);
        if (!before || !after)
            continue;
        metrics::TaskCounterIncrease row;
        row.task = task.id;
        row.increase = *after - *before;
        row.duration = task.duration();
        expected.push_back(row);
    }
    ASSERT_FALSE(expected.empty());

    auto facade = session.taskCounterIncreases(counter);
    ASSERT_EQ(facade.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); i++) {
        EXPECT_EQ(facade[i].task, expected[i].task);
        EXPECT_EQ(facade[i].increase, expected[i].increase);
        EXPECT_EQ(facade[i].duration, expected[i].duration);
    }
}

TEST_F(SessionEquivalence, CounterExtremaMatchBruteForce)
{
    Session session = Session::view(workload_);
    CpuId cpu = 0;
    CounterId counter = 0;
    bool found = false;
    for (CpuId c = 0; c < workload_.numCpus() && !found; c++) {
        for (CounterId id : workload_.cpu(c).counterIds()) {
            if (workload_.cpu(c).counterSamples(id).size() > 10) {
                cpu = c;
                counter = id;
                found = true;
                break;
            }
        }
    }
    ASSERT_TRUE(found) << "workload trace has no sampled counter";

    const auto &samples = workload_.cpu(cpu).counterSamples(counter);
    Rng rng(17);
    TimeStamp max_t = samples.back().time + 10;
    for (int trial = 0; trial < 100; trial++) {
        TimeStamp a = rng.nextBounded(max_t);
        TimeInterval iv{a, a + rng.nextBounded(max_t / 2 + 1)};
        index::MinMax expect;
        for (const auto &s : samples) {
            if (s.time < iv.start || s.time >= iv.end)
                continue;
            if (!expect.valid) {
                expect = {s.value, s.value, true};
            } else {
                expect.min = std::min(expect.min, s.value);
                expect.max = std::max(expect.max, s.value);
            }
        }
        index::MinMax got = session.counterExtrema(cpu, counter, iv);
        ASSERT_EQ(got.valid, expect.valid);
        if (expect.valid) {
            EXPECT_EQ(got.min, expect.min);
            EXPECT_EQ(got.max, expect.max);
        }
    }
    EXPECT_EQ(session.cacheStats().counterIndex.builds, 1u);
}

TEST_F(SessionEquivalence, RenderMatchesDirectRenderer)
{
    Session session = Session::view(workload_);

    render::TimelineConfig config;
    config.mode = render::TimelineMode::State;

    render::Framebuffer direct_fb(320, 96);
    render::TimelineRenderer direct(workload_);
    direct.render(config, direct_fb);

    render::Framebuffer session_fb(320, 96);
    session.render(config, session_fb);

    for (std::uint32_t y = 0; y < direct_fb.height(); y += 3) {
        for (std::uint32_t x = 0; x < direct_fb.width(); x += 7) {
            ASSERT_EQ(session_fb.pixel(x, y), direct_fb.pixel(x, y))
                << "pixel (" << x << ", " << y << ")";
        }
    }
}

TEST_F(SessionEquivalence, SessionFiltersApplyToRendering)
{
    Session session = Session::view(workload_);
    filter::FilterSet none;
    none.add(std::make_shared<filter::DurationFilter>(kTimeMax - 1,
                                                      kTimeMax));

    render::TimelineConfig config;
    config.mode = render::TimelineMode::Heatmap;

    // Direct renderer with the same filter threaded explicitly.
    render::Framebuffer direct_fb(200, 64);
    render::TimelineRenderer direct(workload_);
    render::TimelineConfig direct_config = config;
    direct_config.taskFilter = &none;
    direct.render(direct_config, direct_fb);

    render::Framebuffer session_fb(200, 64);
    session.setFilters(none);
    session.render(config, session_fb);

    for (std::uint32_t y = 0; y < direct_fb.height(); y += 5) {
        for (std::uint32_t x = 0; x < direct_fb.width(); x += 5) {
            ASSERT_EQ(session_fb.pixel(x, y), direct_fb.pixel(x, y))
                << "pixel (" << x << ", " << y << ")";
        }
    }
}

} // namespace
} // namespace session
} // namespace aftermath
