/**
 * @file
 * Fig 8: derived counter of the average task duration over time.
 *
 * The paper's plot peaks at the start (the long-running initialization
 * tasks) and settles into a large plateau for the rest of the execution;
 * the average never reaches zero because some task is always executing.
 */

#include <cstdio>

#include "common.h"

using namespace aftermath;

int
main()
{
    bench::banner("Fig 8", "seidel: average task duration counter");

    runtime::RunResult result = bench::runSeidel(false);
    if (!result.ok) {
        std::fprintf(stderr, "simulation failed: %s\n",
                     result.error.c_str());
        return 1;
    }
    const trace::Trace &tr = result.trace;

    metrics::DerivedCounter avg = metrics::averageTaskDuration(tr, 100);
    std::printf("\nnormalized_time_pct, avg_task_duration_cycles\n");
    TimeStamp span = tr.span().duration();
    for (const auto &s : avg.samples) {
        std::printf("%.1f, %.0f\n",
                    100.0 * static_cast<double>(s.time) /
                        static_cast<double>(span),
                    s.value);
    }

    // Peak must coincide with the first phase; the plateau afterwards is
    // comparatively flat and far below the peak.
    std::size_t peak_idx = 0;
    for (std::size_t i = 1; i < avg.samples.size(); i++) {
        if (avg.samples[i].value > avg.samples[peak_idx].value)
            peak_idx = i;
    }
    double plateau = 0.0;
    int n = 0;
    for (std::size_t i = avg.samples.size() / 2;
         i < avg.samples.size() * 9 / 10; i++) {
        plateau += avg.samples[i].value;
        n++;
    }
    plateau /= n;

    bool peak_early = peak_idx < avg.samples.size() / 4;
    bool peak_tall = avg.samples[peak_idx].value > 2.0 * plateau;

    std::printf("\n");
    bench::row("peak position",
               strFormat("%.0f%% of execution (paper: at the start)",
                         100.0 * static_cast<double>(peak_idx) /
                             static_cast<double>(avg.samples.size())));
    bench::row("peak / plateau ratio",
               strFormat("%.1fx", avg.samples[peak_idx].value / plateau));
    bool shape = peak_early && peak_tall;
    bench::row("startup peak + plateau shape", shape ? "yes" : "NO");
    return shape ? 0 : 1;
}
