/**
 * @file
 * Hostile-input tests of the daemon's wire protocol (daemon/wire.h,
 * daemon/protocol.h): truncated frames, oversized length prefixes,
 * garbage bodies inside valid envelopes, and seeded random byte
 * streams. The server must answer decodable garbage with an error
 * response carrying the failing byte offset, drop unframeable streams,
 * and never crash or wedge — after every hostile connection a fresh
 * well-formed client must still be served.
 *
 * Raw bytes are written straight to the in-process socket (no Client),
 * and every read side carries a receive timeout so a server that
 * stopped responding fails the test instead of hanging it.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include <sys/socket.h>

#include "base/buffer.h"
#include "daemon/client.h"
#include "daemon/protocol.h"
#include "daemon/server.h"
#include "daemon/wire.h"
#include "trace/writer.h"
#include "trace_builder.h"

namespace aftermath {
namespace daemon {
namespace {

/** Bound every raw read so a wedged server fails fast, never hangs. */
void
setReadTimeout(int fd, int seconds)
{
    struct timeval tv;
    tv.tv_sec = seconds;
    tv.tv_usec = 0;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

/** Write raw bytes, ignoring errors (the peer may already be gone). */
void
writeRaw(int fd, const std::vector<std::uint8_t> &bytes)
{
    std::size_t done = 0;
    while (done < bytes.size()) {
        ssize_t n = ::send(fd, bytes.data() + done, bytes.size() - done,
                           MSG_NOSIGNAL);
        if (n <= 0)
            return;
        done += static_cast<std::size_t>(n);
    }
}

/** A hand-assembled frame: [u32 length][u8 type][u64 request id][body]. */
std::vector<std::uint8_t>
rawFrame(std::uint8_t type, std::uint64_t request_id,
         const std::vector<std::uint8_t> &body,
         std::int64_t length_override = -1)
{
    const std::uint64_t length =
        length_override >= 0
            ? static_cast<std::uint64_t>(length_override)
            : kFrameHeaderBytes + body.size();
    std::vector<std::uint8_t> out;
    out.reserve(4 + kFrameHeaderBytes + body.size());
    for (int i = 0; i < 4; i++)
        out.push_back(static_cast<std::uint8_t>(length >> (8 * i)));
    out.push_back(type);
    for (int i = 0; i < 8; i++)
        out.push_back(static_cast<std::uint8_t>(request_id >> (8 * i)));
    out.insert(out.end(), body.begin(), body.end());
    return out;
}

/** Perform the client half of the handshake on a raw fd. */
bool
rawHandshake(int fd)
{
    Handshake hello;
    ByteWriter w;
    encodeHandshake(hello, w);
    if (!writeFrame(fd, MsgType::Hello, 0, w.take()))
        return false;
    Frame ack;
    return readFrame(fd, ack) == FrameReadStatus::Ok &&
           ack.type == MsgType::HelloAck;
}

/** The server must still serve a well-formed client end to end. */
void
expectServerStillServes(Server &server)
{
    static const std::shared_ptr<const std::vector<std::uint8_t>> bytes =
        std::make_shared<const std::vector<std::uint8_t>>(trace::writeTrace(
            test_support::buildRandomTrace(3, [] {
                test_support::RandomTraceOptions options;
                options.cpus = 2;
                options.statesPerCpu = 20;
                return options;
            }())));
    Client client;
    std::string error;
    ASSERT_TRUE(client.adopt(server.connectInProcess(), error)) << error;
    OpenTraceRequest open;
    open.bytes = bytes;
    Reply<OpenTraceReply> reply = client.openTrace(open);
    ASSERT_TRUE(reply.ok()) << reply.message;
    TaskListRequest tasks;
    tasks.head.traceId = reply.value.traceId;
    EXPECT_TRUE(client.taskList(tasks).ok());
}

TEST(DaemonProtocol, RejectsBadMagicAndAnswersWithError)
{
    Server server(Server::Options{1, 16});
    Socket socket = server.connectInProcess();
    setReadTimeout(socket.fd(), 10);

    Handshake hello;
    hello.magic = 0xDEADBEEF;
    ByteWriter w;
    encodeHandshake(hello, w);
    ASSERT_TRUE(writeFrame(socket.fd(), MsgType::Hello, 0, w.take()));

    Frame frame;
    ASSERT_EQ(readFrame(socket.fd(), frame), FrameReadStatus::Ok);
    EXPECT_EQ(frame.type, MsgType::Response);
    ByteReader r(frame.body);
    ResponseHead head;
    ASSERT_TRUE(decodeResponseHead(r, head));
    EXPECT_EQ(head.status, Status::Error);
    EXPECT_FALSE(head.message.empty());

    // And the connection closes: the next read is EOF, not a hang.
    EXPECT_EQ(readFrame(socket.fd(), frame), FrameReadStatus::Eof);
    expectServerStillServes(server);
    server.stop();
}

TEST(DaemonProtocol, NewerClientVersionNegotiatesDownToServers)
{
    Server server(Server::Options{1, 16});
    Socket socket = server.connectInProcess();
    setReadTimeout(socket.fd(), 10);

    Handshake hello;
    hello.version = kProtocolVersion + 7; // From the future.
    ByteWriter w;
    encodeHandshake(hello, w);
    ASSERT_TRUE(writeFrame(socket.fd(), MsgType::Hello, 0, w.take()));

    Frame frame;
    ASSERT_EQ(readFrame(socket.fd(), frame), FrameReadStatus::Ok);
    ASSERT_EQ(frame.type, MsgType::HelloAck);
    Handshake ack;
    ByteReader r(frame.body);
    ASSERT_TRUE(decodeHandshake(r, ack));
    EXPECT_EQ(ack.version, kProtocolVersion); // min(client, server).
    server.stop();
}

TEST(DaemonProtocol, OversizedLengthPrefixAnswersErrorAndCloses)
{
    Server server(Server::Options{1, 16});
    Socket socket = server.connectInProcess();
    setReadTimeout(socket.fd(), 10);
    ASSERT_TRUE(rawHandshake(socket.fd()));

    // Claim a frame bigger than the protocol allows; send no body.
    writeRaw(socket.fd(),
             rawFrame(static_cast<std::uint8_t>(MsgType::TaskList), 1, {},
                      static_cast<std::int64_t>(kMaxFrameBytes) + 1));

    Frame frame;
    ASSERT_EQ(readFrame(socket.fd(), frame), FrameReadStatus::Ok);
    EXPECT_EQ(frame.type, MsgType::Response);
    ByteReader r(frame.body);
    ResponseHead head;
    ASSERT_TRUE(decodeResponseHead(r, head));
    EXPECT_EQ(head.status, Status::Error);

    // The stream is unframeable: the server hangs up afterwards.
    EXPECT_EQ(readFrame(socket.fd(), frame), FrameReadStatus::Eof);
    EXPECT_GE(server.stats().protocolErrors, 1u);
    expectServerStillServes(server);
    server.stop();
}

TEST(DaemonProtocol, TruncatedFramesDisconnectWithoutWedging)
{
    Server server(Server::Options{1, 16});

    // A length prefix smaller than the fixed frame head, a frame cut
    // off mid-head, and one cut off mid-body.
    const std::vector<std::vector<std::uint8_t>> attacks = {
        {0x04, 0x00, 0x00, 0x00, 0x07},          // length 4 < 9
        {0xFF, 0x00, 0x00},                      // torn length prefix
        rawFrame(static_cast<std::uint8_t>(MsgType::TaskList), 1,
                 {0x01, 0x02, 0x03, 0x04}, 64),  // body shorter than length
    };
    for (const std::vector<std::uint8_t> &attack : attacks) {
        Socket socket = server.connectInProcess();
        setReadTimeout(socket.fd(), 10);
        ASSERT_TRUE(rawHandshake(socket.fd()));
        writeRaw(socket.fd(), attack);
        socket.shutdownBoth(); // Half-close: the torn frame is final.

        // The server drops the connection without an answer (there is
        // no request id to answer on) — and without crashing.
        Frame frame;
        FrameReadStatus status = readFrame(socket.fd(), frame);
        EXPECT_TRUE(status == FrameReadStatus::Eof ||
                    status == FrameReadStatus::Truncated);
    }
    expectServerStillServes(server);
    server.stop();
}

TEST(DaemonProtocol, GarbageBodiesAnswerErrorsWithByteOffsets)
{
    Server server(Server::Options{1, 16});
    Socket socket = server.connectInProcess();
    setReadTimeout(socket.fd(), 10);
    ASSERT_TRUE(rawHandshake(socket.fd()));

    // Every query type with an undecodable body must answer Error on
    // the same request id, carry a body offset, and keep the stream.
    const std::vector<std::uint8_t> garbage = {0xFF, 0xFF, 0xFF, 0xFF,
                                               0xFF, 0xFF, 0xFF, 0xFF,
                                               0xFF, 0xFF, 0xFF, 0x7F};
    const std::vector<MsgType> types = {
        MsgType::OpenTrace,     MsgType::CloseTrace,
        MsgType::SetView,       MsgType::SetFilters,
        MsgType::IntervalStats, MsgType::Histogram,
        MsgType::TaskList,      MsgType::CounterExtrema,
        MsgType::TimelineRender, MsgType::Warmup,
        MsgType::AnomalyScan,   MsgType::Cancel,
    };
    std::uint64_t request_id = 1;
    for (MsgType type : types) {
        ASSERT_TRUE(
            writeFrame(socket.fd(), type, request_id, garbage));
        Frame frame;
        ASSERT_EQ(readFrame(socket.fd(), frame), FrameReadStatus::Ok)
            << "type " << static_cast<int>(type);
        EXPECT_EQ(frame.type, MsgType::Response);
        EXPECT_EQ(frame.requestId, request_id);
        ByteReader r(frame.body);
        ResponseHead head;
        ASSERT_TRUE(decodeResponseHead(r, head));
        EXPECT_EQ(head.status, Status::Error)
            << "type " << static_cast<int>(type);
        EXPECT_LE(head.errorOffset, garbage.size());
        EXPECT_FALSE(head.message.empty());
        request_id++;
    }

    // A response-typed frame from a client is a protocol error too.
    ASSERT_TRUE(
        writeFrame(socket.fd(), MsgType::Response, request_id, {}));
    Frame frame;
    ASSERT_EQ(readFrame(socket.fd(), frame), FrameReadStatus::Ok);
    ByteReader r(frame.body);
    ResponseHead head;
    ASSERT_TRUE(decodeResponseHead(r, head));
    EXPECT_EQ(head.status, Status::Error);

    EXPECT_GE(server.stats().protocolErrors,
              static_cast<std::uint64_t>(types.size()));
    expectServerStillServes(server);
    server.stop();
}

TEST(DaemonProtocol, SeededRandomByteStormsNeverCrashTheServer)
{
    Server server(Server::Options{1, 16});
    std::mt19937_64 rng(20260808);
    for (int round = 0; round < 32; round++) {
        Socket socket = server.connectInProcess();
        setReadTimeout(socket.fd(), 10);
        // Half the rounds attack the handshake itself, half attack the
        // post-handshake frame stream.
        if (round % 2 == 0) {
            EXPECT_TRUE(rawHandshake(socket.fd()));
        }
        std::vector<std::uint8_t> storm(1 + rng() % 512);
        for (std::uint8_t &byte : storm)
            byte = static_cast<std::uint8_t>(rng());
        writeRaw(socket.fd(), storm);
        socket.shutdownBoth();

        // Drain whatever the server answers until it hangs up; the
        // receive timeout turns a wedged server into a test failure.
        Frame frame;
        int guard = 0;
        while (readFrame(socket.fd(), frame) == FrameReadStatus::Ok &&
               guard++ < 1000) {
        }
        EXPECT_LT(guard, 1000);
    }
    expectServerStillServes(server);
    server.stop();
}

TEST(DaemonProtocol, AnomalyScanRequestRoundTripsAndValidates)
{
    AnomalyScanRequest request;
    request.head.traceId = 42;
    request.head.priority = WirePriority::Background;
    request.interval = TimeInterval{7, 900};
    request.options.numIntervals = 64;
    request.options.idleWorkerFraction = 0.25;
    request.options.durationZScore = 2.5;
    request.options.burstFactor = 8.0;
    request.options.maxPerKind = 5;

    ByteWriter w;
    encodeAnomalyScanRequest(request, w);
    ByteReader r(w.data());
    AnomalyScanRequest back;
    ASSERT_TRUE(decodeAnomalyScanRequest(r, back));
    EXPECT_TRUE(r.atEnd());
    EXPECT_EQ(back.head.traceId, 42u);
    EXPECT_EQ(back.head.priority, WirePriority::Background);
    ASSERT_TRUE(back.interval.has_value());
    EXPECT_EQ(*back.interval, TimeInterval(7, 900));
    EXPECT_EQ(back.options.numIntervals, 64u);
    EXPECT_EQ(back.options.idleWorkerFraction, 0.25);
    EXPECT_EQ(back.options.durationZScore, 2.5);
    EXPECT_EQ(back.options.burstFactor, 8.0);
    EXPECT_EQ(back.options.maxPerKind, 5u);

    // A nullopt interval (scan the current view) round-trips too.
    request.interval.reset();
    ByteWriter w2;
    encodeAnomalyScanRequest(request, w2);
    ByteReader r2(w2.data());
    ASSERT_TRUE(decodeAnomalyScanRequest(r2, back));
    EXPECT_FALSE(back.interval.has_value());

    // Structurally invalid thresholds must fail the decoder instead of
    // reaching the scanner: a zero or absurd sub-interval count and
    // non-finite doubles.
    auto rejects = [](const AnomalyScanRequest &bad) {
        ByteWriter bw;
        encodeAnomalyScanRequest(bad, bw);
        ByteReader br(bw.data());
        AnomalyScanRequest out;
        return !decodeAnomalyScanRequest(br, out);
    };
    AnomalyScanRequest bad = request;
    bad.options.numIntervals = 0;
    EXPECT_TRUE(rejects(bad));
    bad = request;
    bad.options.numIntervals = (1u << 20) + 1;
    EXPECT_TRUE(rejects(bad));
    bad = request;
    bad.options.burstFactor = std::numeric_limits<double>::infinity();
    EXPECT_TRUE(rejects(bad));
    bad = request;
    bad.options.durationZScore = std::numeric_limits<double>::quiet_NaN();
    EXPECT_TRUE(rejects(bad));
    bad = request;
    bad.options.idleWorkerFraction =
        -std::numeric_limits<double>::infinity();
    EXPECT_TRUE(rejects(bad));
}

TEST(DaemonProtocol, RequestsBeforeHandshakeAreRejected)
{
    Server server(Server::Options{1, 16});
    Socket socket = server.connectInProcess();
    setReadTimeout(socket.fd(), 10);

    // Skip Hello entirely and go straight to a query.
    TaskListRequest request;
    request.head.traceId = 1;
    ByteWriter w;
    encodeTaskListRequest(request, w);
    ASSERT_TRUE(
        writeFrame(socket.fd(), MsgType::TaskList, 1, w.take()));

    Frame frame;
    ASSERT_EQ(readFrame(socket.fd(), frame), FrameReadStatus::Ok);
    EXPECT_EQ(frame.type, MsgType::Response);
    ByteReader r(frame.body);
    ResponseHead head;
    ASSERT_TRUE(decodeResponseHead(r, head));
    EXPECT_EQ(head.status, Status::Error);
    EXPECT_EQ(readFrame(socket.fd(), frame), FrameReadStatus::Eof);
    expectServerStillServes(server);
    server.stop();
}

} // namespace
} // namespace daemon
} // namespace aftermath
