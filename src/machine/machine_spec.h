/**
 * @file
 * Machine presets for the runtime simulator.
 *
 * The paper's test systems: an SGI UV2000 with 192 cores and 24 NUMA nodes
 * connected through NUMAlink 6 (used for seidel), and a quad-socket AMD
 * Opteron 6282 SE with 64 cores and 8 NUMA nodes connected with
 * HyperTransport 3.0 (used for k-means). Since we simulate, both presets
 * are available anywhere, plus arbitrary small machines for tests.
 */

#ifndef AFTERMATH_MACHINE_MACHINE_SPEC_H
#define AFTERMATH_MACHINE_MACHINE_SPEC_H

#include <cstdint>
#include <string>

#include "trace/topology.h"

namespace aftermath {
namespace machine {

/** A named machine configuration. */
struct MachineSpec
{
    std::string name;
    trace::MachineTopology topology;
    std::uint64_t cpuFreqHz = 2'000'000'000;

    /**
     * SGI UV2000-like preset: 24 nodes x 8 cores = 192 cores at 2.4 GHz.
     * NUMAlink distances grow with the hop count: 10 on-node, 30 within
     * a group of four nodes, 50 across groups.
     */
    static MachineSpec uv2000();

    /**
     * Quad-socket AMD Opteron 6282 SE-like preset: 8 nodes x 8 cores =
     * 64 cores at 2.6 GHz. HyperTransport distances: 10 on-node, 16 for
     * the sibling die on the same socket, 22 across sockets.
     */
    static MachineSpec opteron64();

    /** A small uniform machine for tests and the quickstart example. */
    static MachineSpec small(std::uint32_t num_nodes,
                             std::uint32_t cpus_per_node,
                             std::uint64_t freq_hz = 2'000'000'000);
};

} // namespace machine
} // namespace aftermath

#endif // AFTERMATH_MACHINE_MACHINE_SPEC_H
