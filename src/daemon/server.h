/**
 * @file
 * The trace-serving daemon: one QueryEngine, many clients.
 *
 * daemon::Server accepts connections on a Unix-domain socket (or hands
 * out in-process socketpair ends for tests and benches), gives every
 * connection its own reader and writer thread, and binds each opened
 * trace to a session::Session driven exclusively by that connection's
 * reader thread — so the session's single-driving-thread contract holds
 * by construction. All sessions share the server's one QueryEngine and
 * worker pool; clients that open the *same* trace file additionally
 * share that trace's caches (counter indexes, the filter-independent
 * stats memo, the renderer pool) through Session::adoptSharedCaches(),
 * so a cold scan any client pays for serves them all.
 *
 * Isolation comes from the cancellation plane, not from duplication:
 * each (client, trace) binding owns a GenerationDomain, so a client's
 * SetView/SetFilters cancels only that client's stale in-flight
 * queries, never a neighbour's (session/query_engine.h).
 *
 * Admission control: every request frame maps onto the engine's
 * Interactive/Background queues via its priority byte, and each
 * connection holds at most Options::inflightCap requests in flight —
 * the cap answers Rejected immediately instead of queueing unbounded
 * work for one greedy client. A Cancel frame (or the client's
 * disconnect) routes into the tickets' cooperative-cancellation plane;
 * on disconnect the server cancels and then *waits out* every in-flight
 * ticket of that client before dropping its sessions, counting the
 * queries it reaped into Stats::cancelledOnDisconnect.
 *
 * Threading and lock order (base/mutex.h ranks): the server mutex
 * (kDaemonServer, 40) guards the connection list and the shared-trace
 * registry; each connection's mutex (kDaemonConnection, 50) guards its
 * in-flight map and response queue. A reader thread may hold its
 * connection lock while submitting into the engine (50 < 100), and
 * ticket completion callbacks — which run with no ticket lock held —
 * acquire only the connection lock to enqueue the response frame.
 * Server lock and connection lock are never nested in either order.
 */

#ifndef AFTERMATH_DAEMON_SERVER_H
#define AFTERMATH_DAEMON_SERVER_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "base/mutex.h"
#include "base/thread_annotations.h"
#include "daemon/protocol.h"
#include "daemon/wire.h"
#include "session/session.h"

namespace aftermath {
namespace daemon {

/** One running trace-serving daemon. */
class Server
{
  public:
    struct Options
    {
        /** Engine worker threads; 0 = one per hardware thread. */
        unsigned workers = 1;

        /** Per-client in-flight request cap (admission control). */
        std::uint32_t inflightCap = 16;
    };

    /** Cumulative counters (all safe to read while serving). */
    struct Stats
    {
        std::uint64_t requests = 0;        ///< Frames dispatched.
        std::uint64_t rejected = 0;        ///< Admission-control refusals.
        std::uint64_t protocolErrors = 0;  ///< Undecodable request bodies.
        std::uint64_t cancelledOnDisconnect = 0; ///< Reaped in-flight work.
        std::uint64_t connectionsAccepted = 0;
        std::size_t activeConnections = 0;
        std::size_t sharedTraces = 0; ///< Live entries in the registry.
    };

    Server() : Server(Options()) {}
    explicit Server(Options options);

    /** Stops serving: closes the listener and every connection. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind @p path and start the accept loop. False (with @p error)
     * if the socket cannot be bound.
     */
    bool serveUnix(const std::string &path, std::string &error);

    /**
     * Create a connected in-process transport: the server serves one
     * end on its normal connection threads and returns the other for a
     * daemon::Client to adopt. The test and bench path — no filesystem
     * socket, same protocol bytes.
     */
    Socket connectInProcess();

    /**
     * Close the listener and every connection, cancel and wait out all
     * in-flight work, and join every thread. Idempotent; the
     * destructor calls it.
     */
    void stop();

    Stats stats() const;

    /** The shared engine (exposed for bench/test introspection). */
    const std::shared_ptr<session::QueryEngine> &engine() const
    {
        return engine_;
    }

  private:
    struct SharedTrace;
    struct Binding;
    class Connection;

    void acceptLoop();
    void serve(Socket socket);

    /** Drop @p conn from the list once its threads finished. */
    void retire(Connection *conn);

    /**
     * Open (or share) the trace @p request names. Returns null with
     * @p error set on a load failure.
     */
    std::shared_ptr<SharedTrace> acquireTrace(const OpenTraceRequest &request,
                                              std::string &error);

    /** Drop one reference; erases the registry entry at zero. */
    void releaseTrace(const std::shared_ptr<SharedTrace> &shared);

    Options options_;
    std::shared_ptr<session::QueryEngine> engine_;

    mutable base::Mutex mutex_{base::lockrank::kDaemonServer,
                               "daemon-server"};
    std::vector<std::shared_ptr<Connection>> connections_
        AM_GUARDED_BY(mutex_);
    /** Path-keyed registry of traces shared across clients. */
    std::unordered_map<std::string, std::shared_ptr<SharedTrace>> registry_
        AM_GUARDED_BY(mutex_);
    bool stopping_ AM_GUARDED_BY(mutex_) = false;

    // Counters are atomics, not mutex-guarded: reader threads and
    // completion callbacks bump them without touching the server lock.
    std::atomic<std::uint64_t> accepted_{0};
    std::atomic<std::uint64_t> rejected_{0};
    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> protocolErrors_{0};
    std::atomic<std::uint64_t> cancelledOnDisconnect_{0};

    Socket listener_;
    std::thread acceptThread_;
};

} // namespace daemon
} // namespace aftermath

#endif // AFTERMATH_DAEMON_SERVER_H
