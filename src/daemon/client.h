/**
 * @file
 * Client half of the trace-serving daemon: a connection to aftermathd
 * with a blocking and an asynchronous request API.
 *
 * One Client is one protocol connection (daemon/protocol.h): connect,
 * handshake, then issue requests. Every request is asynchronous at the
 * wire level — the client assigns a request id, sends the frame, and a
 * demultiplexer thread routes the response to the matching Future. The
 * blocking methods are thin wrappers (send + Future::get()), so both
 * forms produce identical results; with the in-flight cap the server
 * advertises in its HelloAck, a client can keep several queries
 * pipelined and collect them out of order.
 *
 * Threading: all request methods and Future::get() are safe from any
 * thread (one mutex, lockrank::kDaemonClient, guards the pending map
 * and the socket's write side). A server disconnect fails every
 * pending Future with Status::Error rather than blocking forever.
 */

#ifndef AFTERMATH_DAEMON_CLIENT_H
#define AFTERMATH_DAEMON_CLIENT_H

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "base/mutex.h"
#include "base/thread_annotations.h"
#include "daemon/protocol.h"
#include "daemon/wire.h"
#include "index/counter_index.h"
#include "session/query.h"
#include "stats/histogram.h"
#include "stats/interval_stats.h"

namespace aftermath {
namespace daemon {

/** Decoded outcome of one request. */
template <typename T>
struct Reply
{
    Status status = Status::Error;
    T value{};

    /** Error only: byte offset into the request body. */
    std::uint64_t errorOffset = 0;

    /** Error and Rejected: the server's diagnostic. */
    std::string message;

    bool ok() const { return status == Status::Ok; }
};

/** Result type of requests whose Ok response carries no body. */
struct Ack
{};

namespace detail {

/** Shared slot one response lands in (client internals). */
struct ReplySlot;

struct ClientCore;

/** Type-erased wait used by every Future<T>::get(). */
bool awaitReply(const std::shared_ptr<ClientCore> &core,
                const std::shared_ptr<ReplySlot> &slot,
                std::vector<std::uint8_t> &body, std::string &error);

} // namespace detail

/**
 * Handle to one in-flight request. get() blocks until the response
 * frame arrives (or the connection dies) and decodes it. get() may be
 * called once per Future; a default-constructed Future is invalid.
 */
template <typename T>
class Future
{
  public:
    Future() = default;

    bool valid() const { return slot_ != nullptr; }

    /** The request id on the wire (target for Client::cancel()). */
    std::uint64_t requestId() const { return requestId_; }

    Reply<T>
    get()
    {
        Reply<T> reply;
        std::vector<std::uint8_t> body;
        std::string error;
        if (!detail::awaitReply(core_, slot_, body, error)) {
            reply.status = Status::Error;
            reply.message = error;
            return reply;
        }
        ByteReader r(body);
        ResponseHead head;
        if (!decodeResponseHead(r, head)) {
            reply.status = Status::Error;
            reply.message = "undecodable response";
            return reply;
        }
        reply.status = head.status;
        reply.errorOffset = head.errorOffset;
        reply.message = head.message;
        if (head.status == Status::Ok && decode_ &&
            !decode_(r, reply.value)) {
            reply.status = Status::Error;
            reply.message = "undecodable response body";
        }
        return reply;
    }

  private:
    friend class Client;

    Future(std::shared_ptr<detail::ClientCore> core,
           std::shared_ptr<detail::ReplySlot> slot,
           std::uint64_t request_id, bool (*decode)(ByteReader &, T &))
        : core_(std::move(core)), slot_(std::move(slot)),
          requestId_(request_id), decode_(decode)
    {}

    std::shared_ptr<detail::ClientCore> core_;
    std::shared_ptr<detail::ReplySlot> slot_;
    std::uint64_t requestId_ = 0;
    bool (*decode_)(ByteReader &, T &) = nullptr;
};

/** One connection to a trace-serving daemon. */
class Client
{
  public:
    Client();
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Connect to @p path and handshake; false with @p error set. */
    bool connectUnix(const std::string &path, std::string &error);

    /**
     * Adopt an already-connected socket (Server::connectInProcess())
     * and handshake on it.
     */
    bool adopt(Socket socket, std::string &error);

    /** True between a successful handshake and close()/disconnect. */
    bool connected() const;

    /** The server's per-client in-flight cap (from the HelloAck). */
    std::uint32_t inflightCap() const;

    /** Close the connection; every pending Future fails. Idempotent. */
    void close();

    // -- Asynchronous API --------------------------------------------------

    Future<OpenTraceReply> asyncOpenTrace(const OpenTraceRequest &request);
    Future<Ack> asyncCloseTrace(std::uint64_t trace_id);
    Future<Ack> asyncSetView(std::uint64_t trace_id,
                             const TimeInterval &view);
    Future<Ack> asyncSetFilters(std::uint64_t trace_id,
                                const std::vector<FilterSpec> &filters);
    Future<stats::IntervalStats>
    asyncIntervalStats(const IntervalStatsRequest &request);
    Future<stats::Histogram> asyncHistogram(const HistogramRequest &request);
    Future<std::vector<TaskRow>>
    asyncTaskList(const TaskListRequest &request);
    Future<index::MinMax>
    asyncCounterExtrema(const CounterExtremaRequest &request);
    Future<session::WarmupStats> asyncWarmup(const WarmupRequest &request);
    Future<RenderReply>
    asyncTimelineRender(const TimelineRenderRequest &request);
    Future<std::vector<stats::Anomaly>>
    asyncAnomalyScan(const AnomalyScanRequest &request);

    /**
     * Ask the server to cancel in-flight request @p target_request_id.
     * The target's own Future completes with Status::Cancelled (or Ok
     * if completion won the race); this Future acks the cancel.
     */
    Future<Ack> asyncCancel(std::uint64_t target_request_id);

    // -- Blocking API (send + get) -----------------------------------------

    Reply<OpenTraceReply> openTrace(const OpenTraceRequest &request);
    Reply<Ack> closeTrace(std::uint64_t trace_id);
    Reply<Ack> setView(std::uint64_t trace_id, const TimeInterval &view);
    Reply<Ack> setFilters(std::uint64_t trace_id,
                          const std::vector<FilterSpec> &filters);
    Reply<stats::IntervalStats>
    intervalStats(const IntervalStatsRequest &request);
    Reply<stats::Histogram> histogram(const HistogramRequest &request);
    Reply<std::vector<TaskRow>> taskList(const TaskListRequest &request);
    Reply<index::MinMax>
    counterExtrema(const CounterExtremaRequest &request);
    Reply<session::WarmupStats> warmup(const WarmupRequest &request);
    Reply<RenderReply>
    timelineRender(const TimelineRenderRequest &request);
    Reply<std::vector<stats::Anomaly>>
    anomalyScan(const AnomalyScanRequest &request);

  private:
    /** Register a slot and send the frame; null slot = send failed. */
    std::pair<std::shared_ptr<detail::ReplySlot>, std::uint64_t>
    send(MsgType type, std::vector<std::uint8_t> body);

    template <typename T>
    Future<T>
    request(MsgType type, std::vector<std::uint8_t> body,
            bool (*decode)(ByteReader &, T &))
    {
        auto [slot, id] = send(type, std::move(body));
        return Future<T>(core_, std::move(slot), id, decode);
    }

    bool handshake(std::string &error);
    void demuxLoop();

    std::shared_ptr<detail::ClientCore> core_;
    std::thread demux_;
};

} // namespace daemon
} // namespace aftermath

#endif // AFTERMATH_DAEMON_CLIENT_H
