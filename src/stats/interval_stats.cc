#include "stats/interval_stats.h"

namespace aftermath {
namespace stats {

TimeStamp
IntervalStats::totalTime() const
{
    TimeStamp total = 0;
    for (const auto &[state, time] : timeInState)
        total += time;
    return total;
}

double
IntervalStats::stateFraction(std::uint32_t state) const
{
    TimeStamp total = totalTime();
    if (total == 0)
        return 0.0;
    auto it = timeInState.find(state);
    TimeStamp t = it == timeInState.end() ? 0 : it->second;
    return static_cast<double>(t) / static_cast<double>(total);
}

double
IntervalStats::averageParallelism(std::uint32_t task_exec_state) const
{
    if (interval.empty())
        return 0.0;
    auto it = timeInState.find(task_exec_state);
    TimeStamp t = it == timeInState.end() ? 0 : it->second;
    return static_cast<double>(t) / static_cast<double>(interval.duration());
}

void
IntervalStats::mergeFrom(const IntervalStats &other)
{
    // operator[] creates zero entries for states other saw but never
    // accumulated time for, matching the serial scan's map shape.
    for (const auto &[state, time] : other.timeInState)
        timeInState[state] += time;
    tasksOverlapping += other.tasksOverlapping;
    tasksStarted += other.tasksStarted;
}

IntervalStats
intervalStateChunk(const trace::CpuTimeline &cpu,
                   const TimeInterval &interval)
{
    IntervalStats partial;
    partial.interval = interval;
    const auto &states = cpu.states();
    trace::SliceRange slice = cpu.stateSlice(interval);
    for (std::size_t i = slice.first; i < slice.last; i++) {
        const trace::StateEvent &ev = states[i];
        partial.timeInState[ev.state] +=
            ev.interval.overlapDuration(interval);
    }
    return partial;
}

IntervalStats
intervalTaskChunk(const trace::TaskInstance *first,
                  const trace::TaskInstance *last,
                  const TimeInterval &interval)
{
    IntervalStats partial;
    partial.interval = interval;
    for (const trace::TaskInstance *task = first; task != last; task++) {
        if (task->interval.overlaps(interval)) {
            partial.tasksOverlapping++;
            if (interval.contains(task->interval.start))
                partial.tasksStarted++;
        }
    }
    return partial;
}

} // namespace stats
} // namespace aftermath
