/**
 * @file
 * Timeline geometry: mapping between trace time and pixels.
 *
 * Each horizontal pixel of the timeline represents an interval of the
 * trace whose duration depends on the zoom level (paper section VI-B,
 * Fig 20). The layout also assigns one horizontal lane per CPU.
 */

#ifndef AFTERMATH_RENDER_LAYOUT_H
#define AFTERMATH_RENDER_LAYOUT_H

#include <cstdint>

#include "base/time_interval.h"
#include "base/types.h"

namespace aftermath {
namespace render {

/** Maps the visible time interval onto a pixel grid of CPU lanes. */
class TimelineLayout
{
  public:
    /**
     * @param view Visible time interval (the zoom window).
     * @param width Pixel width of the drawing area.
     * @param height Pixel height of the drawing area.
     * @param num_cpus Number of CPU lanes stacked vertically.
     */
    TimelineLayout(const TimeInterval &view, std::uint32_t width,
                   std::uint32_t height, std::uint32_t num_cpus);

    /** The visible interval. */
    const TimeInterval &view() const { return view_; }

    /** Pixel width. */
    std::uint32_t width() const { return width_; }

    /** Pixel height. */
    std::uint32_t height() const { return height_; }

    /** Number of lanes. */
    std::uint32_t numCpus() const { return numCpus_; }

    /** The time interval represented by pixel column @p x. */
    TimeInterval pixelInterval(std::uint32_t x) const;

    /** The pixel column containing time @p t (clamped to the view). */
    std::uint32_t timeToPixel(TimeStamp t) const;

    /** Trace duration represented by one pixel column. */
    double cyclesPerPixel() const;

    /** Top y coordinate of CPU @p cpu's lane. */
    std::uint32_t laneTop(CpuId cpu) const;

    /** Height of every lane in pixels (>= 1). */
    std::uint32_t laneHeight() const;

  private:
    TimeInterval view_;
    std::uint32_t width_;
    std::uint32_t height_;
    std::uint32_t numCpus_;
};

} // namespace render
} // namespace aftermath

#endif // AFTERMATH_RENDER_LAYOUT_H
