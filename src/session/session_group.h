/**
 * @file
 * Aligned multi-trace comparison sessions: session::SessionGroup.
 *
 * The paper's A/B workflows (Fig 14's NUMA modes, Fig 19's branch fix)
 * analyze N trace variants of one application under the *same* filters
 * and view, and reason about differences. SessionGroup is that workflow
 * as an API: it owns one Session per labeled variant, fans aligned
 * state (filters, view, concurrency, warm-up) out to all of them, and
 * answers delta queries — interval-statistics deltas, duration
 * histograms on one shared bin grid, per-variant regression rows — plus
 * side-by-side and pixel-diff timeline rendering through one shared
 * framebuffer.
 *
 * Every variant added to a group is rewired onto one shared
 * QueryEngine (one worker pool, one generation counter), so group-wide
 * work overlaps instead of warming variants in sequence: warmup()
 * submits every variant's WarmupQuery before waiting on any of them,
 * and submitAll(spec) fans one query spec out to all variants and
 * returns the tickets so deltas compute concurrently. The shared
 * engine's idle lifecycle applies group-wide: queryEngine()->
 * setIdleTimeout()/shutdown() parks-then-joins the one worker set
 * after quiescence, and the next submission of any variant restarts
 * it.
 *
 * Like Session, a group's driving side requires external
 * synchronization: one thread at a time. Tickets returned by
 * submitAll() are safe from any thread.
 */

#ifndef AFTERMATH_SESSION_SESSION_GROUP_H
#define AFTERMATH_SESSION_SESSION_GROUP_H

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "render/framebuffer.h"
#include "render/render_stats.h"
#include "render/timeline_renderer.h"
#include "session/compare.h"
#include "session/session.h"

namespace aftermath {
namespace session {

/** N labeled sessions over N trace variants with aligned state. */
class SessionGroup
{
  public:
    SessionGroup() = default;

    /**
     * Add a variant; returns its index. The label names the variant in
     * regression rows and diagnostics ("baseline", "numa-aware", ...).
     * The session is rewired onto the group's shared QueryEngine (its
     * previous engine, and any concurrency set on it, is dropped —
     * align parallelism through setConcurrency() on the group).
     * Adding invalidates references previously returned by session()
     * and label() — finish assembling the group before holding any.
     */
    std::size_t add(std::string label, Session session);

    /** Number of variants. */
    std::size_t size() const { return variants_.size(); }

    /**
     * The session of variant @p i (panics on out-of-range). The
     * reference stays valid until the next add().
     */
    Session &session(std::size_t i);
    const Session &session(std::size_t i) const;

    /** The label of variant @p i. */
    const std::string &label(std::size_t i) const;

    // -- Aligned shared state ----------------------------------------------

    /** Apply one filter set to every variant. */
    void setFilters(const filter::FilterSet &filters);

    /** Drop the filters of every variant. */
    void clearFilters();

    /** Apply one view interval to every variant. */
    void setView(const TimeInterval &view);

    /** Apply one concurrency knob to every variant. */
    void setConcurrency(const Session::Concurrency &concurrency);

    /**
     * Warm every variant up under @p policy, overlapped on the shared
     * engine pool: all WarmupQuery tickets are submitted before any is
     * waited on, so variants warm concurrently up to the pool's worker
     * count. Returns one WarmupStats per variant, in index order.
     */
    std::vector<Session::WarmupStats>
    warmup(const Session::WarmupPolicy &policy = Session::WarmupPolicy());

    // -- Asynchronous fan-out ----------------------------------------------

    /**
     * Submit @p spec to every variant and return the tickets in index
     * order, all executing concurrently on the shared pool. The spec
     * resolves per variant (a nullopt interval means each variant's own
     * current view — aligned by setView()).
     */
    template <typename Spec>
    auto
    submitAll(const Spec &spec)
        -> std::vector<decltype(std::declval<Session &>().submit(spec))>
    {
        std::vector<decltype(std::declval<Session &>().submit(spec))>
            tickets;
        tickets.reserve(variants_.size());
        for (Variant &v : variants_)
            tickets.push_back(v.session.submit(spec));
        return tickets;
    }

    /** The engine every variant shares (pool + generation counter). */
    const std::shared_ptr<QueryEngine> &queryEngine() const
    {
        return engine_;
    }

    // -- Delta queries -----------------------------------------------------

    /**
     * Interval-statistics delta of variant @p b minus variant @p a,
     * each over its current view.
     */
    compare::IntervalStatsDelta intervalStatsDelta(std::size_t a,
                                                   std::size_t b);

    /**
     * Duration histograms of every variant's filtered tasks on one
     * shared bin grid (aligned bins, comparable per-bin counts).
     */
    compare::PairedHistograms pairedHistograms(std::uint32_t num_bins);

    /**
     * One regression row per variant: duration distribution of the
     * filtered tasks and the least-squares fit of duration vs
     * @p counter increase per kcycle (the Fig 19 table).
     */
    std::vector<compare::RegressionRow> regressionRows(CounterId counter);

    /**
     * Cross-variant regression detection: what got worse in variant
     * @p variant relative to variant @p baseline (the paper's A/B
     * workflow, automated). Reports task types whose mean filtered
     * duration grew past options.slowdownRatio, idle phases of the
     * variant with no overlapping baseline idle phase, and counter
     * bursts of (cpu, counter) pairs quiet at the same time in the
     * baseline — ranked by compare::regressionRankedBefore() — plus
     * the variant-minus-baseline interval-statistics delta. The two
     * underlying anomaly scans overlap on the shared engine pool.
     * Deterministic: same sessions and options, same report.
     */
    compare::RegressionReport
    detectRegressions(std::size_t baseline, std::size_t variant,
                      const compare::RegressionOptions &options = {});

    // -- Rendering ---------------------------------------------------------

    /**
     * Render every variant's timeline stacked into @p fb: variant i
     * occupies the i-th horizontal band of height height/N (the
     * remainder pads the last band's bottom). Each variant renders with
     * its own session semantics (active filters and view injected when
     * the config names none). Returns the summed operation counts.
     */
    render::RenderStats renderSideBySide(
        const render::TimelineConfig &config, render::Framebuffer &fb);

    /**
     * Render the pixel diff of variants @p a and @p b into @p fb: where
     * both render the same color the pixel is dimmed to its gray level
     * (context), where they differ it is the highlight color (see
     * kDiffHighlight), making regressions and improvements pop. Returns
     * the summed operation counts of the two underlying renders.
     */
    render::RenderStats renderDiff(std::size_t a, std::size_t b,
                                   const render::TimelineConfig &config,
                                   render::Framebuffer &fb);

    /** Highlight color of differing pixels in renderDiff(). */
    static constexpr render::Rgba kDiffHighlight{255, 0, 170, 255};

  private:
    struct Variant
    {
        std::string label;
        Session session;
    };

    /** The variant at @p i; panics on out-of-range. */
    Variant &variant(std::size_t i);

    std::vector<Variant> variants_;

    /** One pool + generation counter for every variant. */
    std::shared_ptr<QueryEngine> engine_ =
        std::make_shared<QueryEngine>(1);
};

} // namespace session
} // namespace aftermath

#endif // AFTERMATH_SESSION_SESSION_GROUP_H
