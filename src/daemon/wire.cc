#include "daemon/wire.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace aftermath {
namespace daemon {

namespace {

/** read(2) exactly @p size bytes; 1 = ok, 0 = clean EOF at offset 0,
 *  -1 = error or mid-buffer EOF. */
int
readAll(int fd, std::uint8_t *out, std::size_t size)
{
    std::size_t done = 0;
    while (done < size) {
        ssize_t n = ::read(fd, out + done, size - done);
        if (n == 0)
            return done == 0 ? 0 : -1;
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return -1;
        }
        done += static_cast<std::size_t>(n);
    }
    return 1;
}

bool
writeAll(int fd, const std::uint8_t *data, std::size_t size)
{
    std::size_t done = 0;
    while (done < size) {
        // MSG_NOSIGNAL: a peer that disconnected mid-response must
        // surface as EPIPE to the writer loop, not kill the process.
        ssize_t n = ::send(fd, data + done, size - done, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        done += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

void
Socket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
Socket::shutdownBoth()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

int
Socket::release()
{
    int fd = fd_;
    fd_ = -1;
    return fd;
}

FrameReadStatus
readFrame(int fd, Frame &out)
{
    std::uint8_t lenbuf[4];
    int rc = readAll(fd, lenbuf, sizeof lenbuf);
    if (rc == 0)
        return FrameReadStatus::Eof;
    if (rc < 0)
        return FrameReadStatus::IoError;

    std::uint32_t length = static_cast<std::uint32_t>(lenbuf[0]) |
                           static_cast<std::uint32_t>(lenbuf[1]) << 8 |
                           static_cast<std::uint32_t>(lenbuf[2]) << 16 |
                           static_cast<std::uint32_t>(lenbuf[3]) << 24;
    if (length > kMaxFrameBytes)
        return FrameReadStatus::TooLarge;
    if (length < kFrameHeaderBytes)
        return FrameReadStatus::Truncated;

    std::vector<std::uint8_t> payload(length);
    rc = readAll(fd, payload.data(), payload.size());
    if (rc <= 0)
        return FrameReadStatus::Truncated;

    std::uint8_t type = payload[0];
    if (type < static_cast<std::uint8_t>(MsgType::Hello) ||
        type > kMaxMsgType)
        return FrameReadStatus::Truncated;
    out.type = static_cast<MsgType>(type);
    out.requestId = 0;
    for (int i = 0; i < 8; i++)
        out.requestId |= static_cast<std::uint64_t>(payload[1 + i])
                         << (8 * i);
    out.body.assign(payload.begin() + kFrameHeaderBytes, payload.end());
    return FrameReadStatus::Ok;
}

bool
writeFrame(int fd, MsgType type, std::uint64_t request_id,
           const std::vector<std::uint8_t> &body)
{
    if (body.size() > kMaxFrameBytes - kFrameHeaderBytes)
        return false;
    std::uint32_t length =
        static_cast<std::uint32_t>(kFrameHeaderBytes + body.size());
    std::vector<std::uint8_t> head(4 + kFrameHeaderBytes);
    head[0] = static_cast<std::uint8_t>(length);
    head[1] = static_cast<std::uint8_t>(length >> 8);
    head[2] = static_cast<std::uint8_t>(length >> 16);
    head[3] = static_cast<std::uint8_t>(length >> 24);
    head[4] = static_cast<std::uint8_t>(type);
    for (int i = 0; i < 8; i++)
        head[5 + i] = static_cast<std::uint8_t>(request_id >> (8 * i));
    if (!writeAll(fd, head.data(), head.size()))
        return false;
    return body.empty() || writeAll(fd, body.data(), body.size());
}

Socket
connectUnix(const std::string &path, std::string &error)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path) {
        error = "socket path too long: " + path;
        return Socket();
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        error = std::string("socket: ") + std::strerror(errno);
        return Socket();
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr), sizeof addr) <
        0) {
        error = "connect " + path + ": " + std::strerror(errno);
        ::close(fd);
        return Socket();
    }
    return Socket(fd);
}

Socket
listenUnix(const std::string &path, std::string &error)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path) {
        error = "socket path too long: " + path;
        return Socket();
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        error = std::string("socket: ") + std::strerror(errno);
        return Socket();
    }
    ::unlink(path.c_str()); // Stale socket file from a previous run.
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof addr) < 0) {
        error = "bind " + path + ": " + std::strerror(errno);
        ::close(fd);
        return Socket();
    }
    if (::listen(fd, 64) < 0) {
        error = "listen " + path + ": " + std::strerror(errno);
        ::close(fd);
        return Socket();
    }
    return Socket(fd);
}

Socket
acceptConnection(int listen_fd)
{
    for (;;) {
        int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd >= 0)
            return Socket(fd);
        if (errno == EINTR)
            continue;
        return Socket();
    }
}

bool
socketPair(Socket &a, Socket &b, std::string &error)
{
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) < 0) {
        error = std::string("socketpair: ") + std::strerror(errno);
        return false;
    }
    a = Socket(fds[0]);
    b = Socket(fds[1]);
    return true;
}

} // namespace daemon
} // namespace aftermath
