#include "stats/comm_matrix.h"

#include <algorithm>

#include "base/logging.h"

namespace aftermath {
namespace stats {

CommMatrix
CommMatrix::fromTrace(const trace::Trace &trace,
                      const TimeInterval &interval)
{
    CommMatrix m;
    m.numNodes_ = trace.topology().numNodes();
    m.cells_.assign(static_cast<std::size_t>(m.numNodes_) * m.numNodes_, 0);

    for (CpuId c = 0; c < trace.numCpus(); c++) {
        const auto &events = trace.cpu(c).commEvents();
        trace::SliceRange slice = trace.cpu(c).commSlice(interval);
        for (std::size_t i = slice.first; i < slice.last; i++) {
            const trace::CommEvent &ev = events[i];
            if (ev.kind != trace::CommKind::DataRead &&
                ev.kind != trace::CommKind::DataWrite)
                continue;
            if (ev.src >= m.numNodes_ || ev.dst >= m.numNodes_)
                continue;
            m.cells_[static_cast<std::size_t>(ev.src) * m.numNodes_ +
                     ev.dst] += ev.size;
        }
    }
    return m;
}

CommMatrix
CommMatrix::fromTrace(const trace::Trace &trace)
{
    return fromTrace(trace, trace.span());
}

CommMatrix
CommMatrix::fromCells(std::uint32_t num_nodes,
                      std::vector<std::uint64_t> cells)
{
    AFTERMATH_ASSERT(cells.size() ==
                         static_cast<std::size_t>(num_nodes) * num_nodes,
                     "cell count does not match %u nodes", num_nodes);
    CommMatrix m;
    m.numNodes_ = num_nodes;
    m.cells_ = std::move(cells);
    return m;
}

std::uint64_t
CommMatrix::bytes(NodeId src, NodeId dst) const
{
    AFTERMATH_ASSERT(src < numNodes_ && dst < numNodes_,
                     "node pair (%u, %u) out of range", src, dst);
    return cells_[static_cast<std::size_t>(src) * numNodes_ + dst];
}

std::uint64_t
CommMatrix::totalBytes() const
{
    std::uint64_t total = 0;
    for (std::uint64_t c : cells_)
        total += c;
    return total;
}

double
CommMatrix::fraction(NodeId src, NodeId dst) const
{
    std::uint64_t total = totalBytes();
    if (total == 0)
        return 0.0;
    return static_cast<double>(bytes(src, dst)) /
           static_cast<double>(total);
}

double
CommMatrix::diagonalFraction() const
{
    std::uint64_t total = totalBytes();
    if (total == 0)
        return 0.0;
    std::uint64_t diag = 0;
    for (NodeId n = 0; n < numNodes_; n++)
        diag += bytes(n, n);
    return static_cast<double>(diag) / static_cast<double>(total);
}

std::uint64_t
CommMatrix::maxBytes() const
{
    std::uint64_t best = 0;
    for (std::uint64_t c : cells_)
        best = std::max(best, c);
    return best;
}

std::string
CommMatrix::toAscii() const
{
    // Five shades from blank to '#', scaled against the largest cell —
    // a textual stand-in for Fig 15's shades of red.
    static const char shades[] = {' ', '.', ':', '*', '#'};
    std::uint64_t peak = maxBytes();
    std::string out;
    for (NodeId src = 0; src < numNodes_; src++) {
        for (NodeId dst = 0; dst < numNodes_; dst++) {
            int shade = 0;
            if (peak > 0) {
                double f = static_cast<double>(bytes(src, dst)) /
                           static_cast<double>(peak);
                shade = static_cast<int>(f * 4.0 + 0.5);
            }
            out += shades[shade];
            out += ' ';
        }
        out += '\n';
    }
    return out;
}

} // namespace stats
} // namespace aftermath
