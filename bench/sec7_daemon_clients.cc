/**
 * @file
 * Trace-serving daemon: interactive query latency under client fan-in.
 *
 * The daemon's promise is that one engine can serve many viewers of one
 * trace without the viewers feeling each other: clients that open the
 * same trace file share its caches (daemon/server.h), so once any
 * client has paid a cold interval scan, every client's repeat of it is
 * a memo hit whose cost is the wire round trip plus dispatch — not a
 * rescan. This bench measures exactly that contract: it serves one
 * seidel trace from an in-process daemon::Server, warms a fixed set of
 * probe intervals through one client, verifies the served results are
 * bit-identical to a local Session (same encoder, byte-for-byte), and
 * then drives 1, 8 and 64 concurrent clients issuing Interactive
 * interval-statistics requests over those intervals, recording the p50
 * and p95 per-request latency at each fan-in.
 *
 * The committed baseline (bench/baselines/sec7_daemon_clients.json)
 * gates the 64-client p95: a regression that turns warm queries back
 * into scans, or serializes the connection planes behind one lock,
 * shows up as a p95 collapse long before it hits the generous ceiling.
 * Results land in bench-out/BENCH_sec7_daemon_clients.json for the CI
 * gate (tools/check_bench.py) and the perf trajectory.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common.h"

using namespace aftermath;

namespace {

using Clock = std::chrono::steady_clock;

constexpr int kProbeIntervals = 16;
constexpr int kRequestsPerClient = 200;

/** The probe intervals: @p kProbeIntervals slices of the trace span. */
std::vector<TimeInterval>
probeIntervals(const TimeInterval &span)
{
    std::vector<TimeInterval> intervals;
    const TimeStamp width = std::max<TimeStamp>(
        1, (span.end - span.start) / kProbeIntervals);
    for (int i = 0; i < kProbeIntervals; i++) {
        TimeStamp start = span.start + i * width;
        intervals.push_back(TimeInterval{
            start, std::min<TimeStamp>(span.end, start + width)});
    }
    return intervals;
}

/** Connect a fresh client to the in-process server or die. */
void
connect(daemon::Server &server, daemon::Client &client)
{
    std::string error;
    if (!client.adopt(server.connectInProcess(), error))
        fatal("connect failed: %s", error.c_str());
}

/** Open the shared trace (path-keyed, so clients share caches) or die. */
daemon::OpenTraceReply
openShared(daemon::Client &client, const std::string &path)
{
    daemon::OpenTraceRequest open;
    open.path = path;
    daemon::Reply<daemon::OpenTraceReply> reply = client.openTrace(open);
    if (!reply.ok())
        fatal("open failed: %s", reply.message.c_str());
    return reply.value;
}

std::vector<std::uint8_t>
bytesOf(const stats::IntervalStats &stats)
{
    ByteWriter writer;
    stats::encodeIntervalStats(stats, writer);
    return writer.take();
}

/** Inclusive-rank percentile of @p samples; sorts in place. */
double
percentile(std::vector<double> &samples, double p)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    std::size_t rank = static_cast<std::size_t>(p * (samples.size() - 1));
    return samples[rank];
}

struct FanInResult
{
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double qps = 0.0;
};

/**
 * Drive @p clients concurrent clients, each issuing
 * kRequestsPerClient Interactive interval-stats requests over the
 * warm probe set (staggered per client so neighbours are always on
 * different intervals), and aggregate latency across every request.
 */
FanInResult
measureFanIn(daemon::Server &server, const std::string &trace_path,
             const std::vector<TimeInterval> &intervals, int clients)
{
    std::vector<std::vector<double>> latencies(clients);
    std::vector<std::thread> threads;
    auto wall_start = Clock::now();
    for (int c = 0; c < clients; c++) {
        threads.emplace_back([&, c] {
            daemon::Client client;
            connect(server, client);
            std::uint64_t trace_id =
                openShared(client, trace_path).traceId;
            latencies[c].reserve(kRequestsPerClient);
            for (int r = 0; r < kRequestsPerClient; r++) {
                daemon::IntervalStatsRequest request;
                request.head.traceId = trace_id;
                request.head.priority =
                    daemon::WirePriority::Interactive;
                request.interval =
                    intervals[(c + r) % intervals.size()];
                auto start = Clock::now();
                daemon::Reply<stats::IntervalStats> reply =
                    client.intervalStats(request);
                auto elapsed = Clock::now() - start;
                if (!reply.ok())
                    fatal("interval stats failed: %s",
                          reply.message.c_str());
                latencies[c].push_back(
                    std::chrono::duration<double, std::milli>(elapsed)
                        .count());
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    double wall_s =
        std::chrono::duration<double>(Clock::now() - wall_start).count();

    std::vector<double> all;
    all.reserve(static_cast<std::size_t>(clients) * kRequestsPerClient);
    for (const std::vector<double> &per_client : latencies)
        all.insert(all.end(), per_client.begin(), per_client.end());

    FanInResult result;
    result.p50_ms = percentile(all, 0.50);
    result.p95_ms = percentile(all, 0.95);
    result.qps = all.size() / std::max(wall_s, 1e-9);
    return result;
}

} // namespace

int
main()
{
    bench::banner("Section VII (this repo)",
                  "trace-serving daemon: interactive query latency "
                  "at 1/8/64 concurrent clients");
    bench::JsonLines json("sec7_daemon_clients");
    json.add("hardware_threads",
             std::thread::hardware_concurrency());

    runtime::RunResult result = bench::runSeidel(false);
    if (!result.ok) {
        std::fprintf(stderr, "simulation failed: %s\n",
                     result.error.c_str());
        return 1;
    }
    const trace::Trace &tr = result.trace;

    // Serve the trace from disk: path-keyed opens are what share one
    // registry entry (and its caches) across every client below.
    const std::string trace_path =
        bench::benchOutDir() + "/sec7_daemon_clients.trace";
    std::string error;
    if (!trace::writeTraceFile(tr, trace_path, trace::Encoding::Compact,
                               error))
        fatal("trace write failed: %s", error.c_str());

    daemon::Server server(daemon::Server::Options{0, 16});
    bench::row("trace",
               strFormat("%u cpus, %zu task instances (served from %s)",
                         tr.numCpus(), tr.taskInstances().size(),
                         trace_path.c_str()));

    // Warm the probe set through one client and check the daemon's
    // core correctness claim while at it: every served result must be
    // byte-identical to the local Session's, through the same encoder.
    daemon::Client warmer;
    connect(server, warmer);
    daemon::OpenTraceReply opened = openShared(warmer, trace_path);
    std::vector<TimeInterval> intervals = probeIntervals(opened.span);
    Session local = Session::view(tr);
    bool identical = true;
    auto warm_start = Clock::now();
    for (const TimeInterval &interval : intervals) {
        daemon::IntervalStatsRequest request;
        request.head.traceId = opened.traceId;
        request.head.priority = daemon::WirePriority::Interactive;
        request.interval = interval;
        daemon::Reply<stats::IntervalStats> reply =
            warmer.intervalStats(request);
        if (!reply.ok())
            fatal("warm query failed: %s", reply.message.c_str());
        if (bytesOf(reply.value) != bytesOf(local.intervalStats(interval)))
            identical = false;
    }
    double warm_s = std::chrono::duration<double>(Clock::now() -
                                                  warm_start)
                        .count();
    json.add("identical", identical ? 1 : 0);
    bench::row("cold warm-up",
               strFormat("%d intervals in %.3f s, bit-identical to "
                         "local session: %s",
                         kProbeIntervals, warm_s,
                         identical ? "yes" : "NO"));

    for (int clients : {1, 8, 64}) {
        FanInResult fan =
            measureFanIn(server, trace_path, intervals, clients);
        json.add(strFormat("p50_ms_c%d", clients), fan.p50_ms, "ms",
                 clients);
        json.add(strFormat("p95_ms_c%d", clients), fan.p95_ms, "ms",
                 clients);
        json.add(strFormat("qps_c%d", clients), fan.qps, "1/s",
                 clients);
        bench::row(strFormat("%d client%s", clients,
                             clients == 1 ? "" : "s"),
                   strFormat("p50 %.3f ms, p95 %.3f ms, %.0f req/s",
                             fan.p50_ms, fan.p95_ms, fan.qps));
    }

    server.stop();
    daemon::Server::Stats stats = server.stats();
    bench::row("served", strFormat("%llu requests over %llu connections"
                                   " (%llu rejected, %llu protocol "
                                   "errors)",
                                   static_cast<unsigned long long>(
                                       stats.requests),
                                   static_cast<unsigned long long>(
                                       stats.connectionsAccepted),
                                   static_cast<unsigned long long>(
                                       stats.rejected),
                                   static_cast<unsigned long long>(
                                       stats.protocolErrors)));
    std::remove(trace_path.c_str());
    if (!json.ok())
        std::fprintf(stderr, "warning: could not write %s\n",
                     json.path().c_str());
    return 0;
}
