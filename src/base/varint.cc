#include "base/varint.h"

namespace aftermath {

void
varintEncode(std::uint64_t value, std::vector<std::uint8_t> &out)
{
    while (value >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(value) | 0x80);
        value >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(value));
}

bool
varintDecode(const std::uint8_t *data, std::size_t size,
             std::size_t &offset, std::uint64_t &value)
{
    std::uint64_t result = 0;
    int shift = 0;
    std::size_t pos = offset;
    while (pos < size) {
        std::uint8_t byte = data[pos++];
        if (shift == 63 && (byte & 0x7e))
            return false; // Would overflow 64 bits.
        if (shift > 63)
            return false;
        result |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80)) {
            offset = pos;
            value = result;
            return true;
        }
        shift += 7;
    }
    return false; // Truncated input.
}

} // namespace aftermath
