/**
 * @file
 * The complete in-memory representation of one execution trace.
 *
 * A Trace holds the machine topology, per-CPU event timelines, task types
 * and instances, memory regions with their NUMA placement, and the
 * descriptions of states and counters. It is the object every analysis,
 * filter, derived metric, statistic and renderer in this library operates
 * on, and is what TraceReader materializes from a trace file.
 */

#ifndef AFTERMATH_TRACE_TRACE_H
#define AFTERMATH_TRACE_TRACE_H

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/time_interval.h"
#include "base/types.h"
#include "trace/counter.h"
#include "trace/cpu_timeline.h"
#include "trace/memory.h"
#include "trace/state.h"
#include "trace/task.h"
#include "trace/topology.h"

namespace aftermath {

namespace base {
class ThreadPool;
}

namespace trace {

/**
 * One execution trace of a task-parallel program.
 *
 * Populate with the add/set methods (in any order; per-CPU arrays must be
 * appended time-ordered), then call finalize() exactly once before
 * analysis. finalize() validates ordering invariants, sorts the region
 * table by address and builds the per-task memory-access index.
 */
class Trace
{
  public:
    // -- Population ------------------------------------------------------

    /** Set the machine topology; resizes the per-CPU timeline table. */
    void setTopology(MachineTopology topo);

    /** Set the clock frequency used to convert cycles to seconds. */
    void setCpuFreqHz(std::uint64_t freq) { cpuFreqHz_ = freq; }

    /** Register a state description. */
    void addStateDescription(const StateDescription &desc);

    /** Register a counter description. */
    void addCounterDescription(const CounterDescription &desc);

    /** Register a task type (work function). */
    void addTaskType(const TaskType &type);

    /** Record one task execution. */
    void addTaskInstance(const TaskInstance &instance);

    /** Register a memory region with its NUMA placement. */
    void addMemRegion(const MemRegion &region);

    /** Record a task-level memory access. */
    void addMemAccess(const MemAccess &access);

    /** Mutable timeline of CPU @p cpu (topology must be set first). */
    CpuTimeline &cpu(CpuId cpu);

    /**
     * Validate and index the trace.
     *
     * @param error Receives a description of the first violation.
     * @return true on success; the trace is unusable for analysis if
     *         validation fails.
     */
    bool finalize(std::string &error);

    /**
     * finalize() with the per-CPU ordering validation distributed over
     * @p pool (nullptr validates serially). The result — including
     * which violation is reported — is identical to the serial form:
     * every CPU validates independently and the lowest-numbered failing
     * CPU wins. The parallel trace reader drives this overload.
     */
    bool finalize(std::string &error, base::ThreadPool *pool);

    // -- Access ----------------------------------------------------------

    /** The machine topology. */
    const MachineTopology &topology() const { return topology_; }

    /** Clock frequency in Hz (cycles per second). */
    std::uint64_t cpuFreqHz() const { return cpuFreqHz_; }

    /** Number of CPUs (workers) in the trace. */
    std::uint32_t numCpus() const { return topology_.numCpus(); }

    /** True if @p cpu is a valid CPU id of this trace's topology. */
    bool hasCpu(CpuId cpu) const { return cpu < cpus_.size(); }

    /**
     * Read-only timeline of CPU @p cpu; panics on out-of-range ids.
     * Callers with untrusted ids should use cpuOrNull() instead.
     */
    const CpuTimeline &cpu(CpuId cpu) const;

    /** Timeline of CPU @p cpu, or nullptr if @p cpu is out of range. */
    const CpuTimeline *cpuOrNull(CpuId cpu) const;

    /** [0, end) interval covering every event in the trace. */
    TimeInterval span() const { return {0, lastTime_}; }

    /** Name of state @p id, or a placeholder if undescribed. */
    std::string stateName(std::uint32_t id) const;

    /** Name of counter @p id, or a placeholder if undescribed. */
    std::string counterName(CounterId id) const;

    /** All registered state descriptions, by id. */
    const std::map<std::uint32_t, std::string> &states() const
    {
        return stateNames_;
    }

    /** All registered counter descriptions, by id. */
    const std::map<CounterId, std::string> &counters() const
    {
        return counterNames_;
    }

    /** All registered task types, keyed by work-function address. */
    const std::map<TaskTypeId, TaskType> &taskTypes() const
    {
        return taskTypes_;
    }

    /** All task instances, in insertion order. */
    const std::vector<TaskInstance> &taskInstances() const
    {
        return taskInstances_;
    }

    /** The task instance with id @p id, or nullptr. */
    const TaskInstance *taskInstance(TaskInstanceId id) const;

    /** All memory regions, sorted by address after finalize(). */
    const std::vector<MemRegion> &memRegions() const { return memRegions_; }

    /** The region containing @p address, or nullptr. */
    const MemRegion *regionContaining(std::uint64_t address) const;

    /** The region with id @p id, or nullptr. */
    const MemRegion *region(RegionId id) const;

    /** All memory accesses, grouped by task after finalize(). */
    const std::vector<MemAccess> &memAccesses() const { return memAccesses_; }

    /**
     * The accesses performed by task instance @p id as an iterator pair
     * [first, second). Unknown ids yield a well-defined empty range
     * (both iterators equal); the pair is always safe to iterate.
     */
    std::pair<std::vector<MemAccess>::const_iterator,
              std::vector<MemAccess>::const_iterator>
    accessRange(TaskInstanceId id) const;

    /** First access of task @p id; accessRange(id).first. */
    std::vector<MemAccess>::const_iterator accessesBegin(
        TaskInstanceId id) const;

    /** Past-the-end access of task @p id; accessRange(id).second. */
    std::vector<MemAccess>::const_iterator accessesEnd(
        TaskInstanceId id) const;

    /** True once finalize() has succeeded. */
    bool finalized() const { return finalized_; }

  private:
    MachineTopology topology_;
    std::uint64_t cpuFreqHz_ = 2'000'000'000;
    std::vector<CpuTimeline> cpus_;

    std::map<std::uint32_t, std::string> stateNames_;
    std::map<CounterId, std::string> counterNames_;
    std::map<TaskTypeId, TaskType> taskTypes_;

    std::vector<TaskInstance> taskInstances_;
    std::unordered_map<TaskInstanceId, std::size_t> instanceIndex_;

    std::vector<MemRegion> memRegions_;
    std::unordered_map<RegionId, std::size_t> regionIndex_;

    std::vector<MemAccess> memAccesses_;
    std::unordered_map<TaskInstanceId,
                       std::pair<std::size_t, std::size_t>> accessRanges_;

    TimeStamp lastTime_ = 0;
    bool finalized_ = false;
};

} // namespace trace
} // namespace aftermath

#endif // AFTERMATH_TRACE_TRACE_H
