/**
 * @file
 * The executors of the asynchronous query plane: Session::submit()
 * overloads and the worker-side code they fan out.
 *
 * Executors capture shared ownership of everything they read — the
 * trace, the sharded index cache, filter snapshots, the SessionMemo —
 * and never the Session itself, so sessions stay movable and
 * destruction is safe with queries in flight. No executor ever blocks
 * on the pool (fan-out queries decompose into independent chunk tasks
 * joined by an atomic countdown), so a 1-worker pool cannot deadlock.
 */

#include "session/query_engine.h"

#include <algorithm>

#include "filter/task_filter.h"
#include "index/summary_pyramid.h"
#include "session/renderer_pool.h"
#include "session/session.h"
#include "stats/anomaly.h"
#include "stats/histogram.h"
#include "trace/reader.h"

namespace aftermath {
namespace session {

// -- QueryEngine lifecycle -----------------------------------------------

QueryEngine::QueryEngine(unsigned workers)
    : defaultDomain_(std::make_shared<GenerationDomain>())
{
    setWorkers(workers);
}

QueryEngine::~QueryEngine()
{
    if (reaper_.joinable()) {
        {
            base::MutexLock lock(poolMutex_);
            stopReaper_ = true;
        }
        reaperCv_.notifyAll();
        reaper_.join();
    }
    // pool_ drains both queues and joins in its destructor; executors
    // never call back into the engine, so no lock is needed here.
}

void
QueryEngine::setWorkers(unsigned workers)
{
    unsigned effective =
        workers == 0 ? base::ThreadPool::defaultWorkers() : workers;
    base::MutexLock lock(poolMutex_);
    if (pool_ && effective != workers_)
        pool_.reset();
    workers_ = effective;
}

base::ThreadPool &
QueryEngine::ensurePoolLocked()
{
    if (!pool_) {
        pool_ = std::make_shared<base::ThreadPool>(workers_);
        // A parked reaper waits for the pool to exist again.
        reaperCv_.notifyAll();
    }
    return *pool_;
}

void
QueryEngine::withPool(const std::function<void(base::ThreadPool &)> &body)
{
    base::MutexLock lock(poolMutex_);
    body(ensurePoolLocked());
}

void
QueryEngine::drain()
{
    // Copy the handle and wait outside poolMutex_: holding the lock
    // across a full quiescence wait would turn drain() into a barrier
    // every concurrent submitter queues behind (and would deadlock
    // outright if a drained task ever needed the lock to finish).
    std::shared_ptr<base::ThreadPool> pool;
    {
        base::MutexLock lock(poolMutex_);
        pool = pool_;
    }
    // A parked pool has nothing queued or running: already drained.
    if (pool)
        pool->wait();
}

void
QueryEngine::setIdleTimeout(std::chrono::milliseconds timeout)
{
    {
        base::MutexLock lock(poolMutex_);
        idleTimeout_ = timeout;
        if (timeout.count() > 0 && !reaper_.joinable())
            reaper_ = std::thread([this] { reaperLoop(); });
    }
    reaperCv_.notifyAll();
}

void
QueryEngine::shutdown()
{
    base::MutexLock lock(poolMutex_);
    // Drains both queues (queued background work completes) and joins.
    pool_.reset();
}

unsigned
QueryEngine::liveWorkers() const
{
    base::MutexLock lock(poolMutex_);
    return pool_ ? pool_->numWorkers() : 0;
}

bool
QueryEngine::hasInteractiveWork() const
{
    base::MutexLock lock(poolMutex_);
    return pool_ && pool_->hasHighPriorityWork();
}

void
QueryEngine::reaperLoop()
{
    base::MutexLock lock(poolMutex_);
    for (;;) {
        if (stopReaper_)
            return;
        if (idleTimeout_.count() <= 0 || !pool_) {
            // Nothing to reap until a timeout is set and a pool lives.
            reaperCv_.wait(lock);
            continue;
        }
        std::chrono::steady_clock::duration idle = pool_->idleFor();
        if (idle >= idleTimeout_) {
            // Quiescent past the timeout: park-then-join. No task is
            // queued or running (that is what idle means), and every
            // submission path holds poolMutex_, so nothing races the
            // teardown. The next submission restarts the pool.
            pool_.reset();
            continue;
        }
        reaperCv_.waitFor(lock, idleTimeout_ - idle +
                                    std::chrono::milliseconds(1));
    }
}

namespace {

/** The pool scheduling class of one query priority. */
base::TaskPriority
toTaskPriority(QueryPriority priority)
{
    return priority == QueryPriority::Interactive
        ? base::TaskPriority::High
        : base::TaskPriority::Normal;
}

/** Fresh ticket state snapshotting the driving domain's generation. */
template <typename Result>
std::shared_ptr<detail::TicketState<Result>>
newTicketState(const GenerationDomain &domain)
{
    auto state = std::make_shared<detail::TicketState<Result>>();
    state->generation = domain.generation();
    state->live = domain.generationCell();
    return state;
}

/** An already-Done ticket (memo fast path; never touches the pool). */
template <typename Result>
QueryTicket<Result>
completedTicket(const GenerationDomain &domain, Result value)
{
    auto state = newTicketState<Result>(domain);
    state->status = QueryStatus::Done;
    state->result.emplace(std::move(value));
    return QueryTicket<Result>(std::move(state));
}

/**
 * Scan the trace's task instances against @p filters in insertion
 * order, polling @p state for staleness every few thousand instances.
 * Returns nullopt when the query went stale mid-scan.
 */
template <typename Result>
std::optional<std::vector<const trace::TaskInstance *>>
scanTaskList(const trace::Trace &trace, const filter::FilterSet &filters,
             const detail::TicketState<Result> &state)
{
    std::vector<const trace::TaskInstance *> out;
    const std::vector<trace::TaskInstance> &instances =
        trace.taskInstances();
    for (std::size_t i = 0; i < instances.size(); i++) {
        if ((i & 0xfff) == 0 && state.stale())
            return std::nullopt;
        if (filters.matches(trace, instances[i]))
            out.push_back(&instances[i]);
    }
    return out;
}

/**
 * Publish a freshly computed task list into the memo, unless the
 * filter generation moved on (a stale-keyed entry would outlive the
 * one-live-generation invariant of the cache).
 */
void
publishTaskList(SessionMemo &memo, std::uint64_t filter_generation,
                const std::vector<const trace::TaskInstance *> &list)
{
    base::MutexLock lock(memo.mutex);
    if (memo.filterGeneration != filter_generation)
        return;
    memo.taskList.insertOrGet(
        filter_generation,
        std::vector<const trace::TaskInstance *>(list));
}

// -- Interval statistics (parallel fan-out) ------------------------------

/**
 * One cold interval-statistics scan decomposed into per-CPU state
 * chunks plus task-array chunks. Drainer tasks claim chunks through an
 * atomic cursor; the last drainer out merges the partials in chunk
 * order and completes (or cancels) the ticket. All sums are exact
 * integers, so the merged result is bit-identical to the serial scan
 * at any worker count.
 */
struct StatsJob
{
    std::shared_ptr<detail::TicketState<stats::IntervalStats>> ticket;
    std::shared_ptr<const trace::Trace> trace;
    std::shared_ptr<StatsMemo> memo;
    TimeInterval interval;
    std::size_t cpuChunks = 0;
    std::size_t taskChunks = 0;
    std::size_t taskChunkSize = 1;
    std::vector<stats::IntervalStats> partials;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> active{0};
    std::atomic<bool> abandoned{false};

    /** The executing pool; valid for every drainer run (a drainer only
     *  runs on this pool, and the pool drains before it dies). */
    base::ThreadPool *pool = nullptr;

    /** Background jobs yield at chunk boundaries; interactive never. */
    bool background = false;
};

void drainStats(const std::shared_ptr<StatsJob> &job);

/**
 * The cooperative yield of one background drainer: when interactive
 * work is queued, re-submit the continuation at Background priority
 * and free this worker for the High task. The claim cursor makes the
 * hand-off invisible — the continuation resumes exactly where the job
 * left off, so results stay bit-identical to an uninterrupted run.
 * Returns true when the caller must return *without* touching the
 * job's active count (the continuation still owns its slot).
 */
template <typename Job>
bool
yieldForInteractive(const std::shared_ptr<Job> &job,
                    void (*drain)(const std::shared_ptr<Job> &))
{
    if (!job->background || !job->pool->hasHighPriorityWork())
        return false;
    job->pool->submit([job, drain] { drain(job); },
                      base::TaskPriority::Normal);
    return true;
}

void
drainStats(const std::shared_ptr<StatsJob> &job)
{
    job->ticket->markRunning();
    const std::size_t total = job->cpuChunks + job->taskChunks;
    for (;;) {
        if (job->ticket->stale()) {
            job->abandoned.store(true, std::memory_order_relaxed);
            break;
        }
        if (yieldForInteractive(job, drainStats))
            return;
        std::size_t i = job->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= total)
            break;
        if (i < job->cpuChunks) {
            job->partials[i] = stats::intervalStateChunk(
                job->trace->cpu(static_cast<CpuId>(i)), job->interval);
        } else {
            const auto &instances = job->trace->taskInstances();
            std::size_t begin = (i - job->cpuChunks) * job->taskChunkSize;
            std::size_t end =
                std::min(instances.size(), begin + job->taskChunkSize);
            job->partials[i] = stats::intervalTaskChunk(
                instances.data() + begin, instances.data() + end,
                job->interval);
        }
    }
    if (job->active.fetch_sub(1, std::memory_order_acq_rel) != 1)
        return;
    // Last drainer out: merge, publish, complete.
    if (job->abandoned.load(std::memory_order_relaxed) ||
        job->ticket->stale()) {
        job->ticket->completeCancelled();
        return;
    }
    stats::IntervalStats merged;
    merged.interval = job->interval;
    for (const stats::IntervalStats &partial : job->partials)
        merged.mergeFrom(partial);
    {
        base::MutexLock lock(job->memo->mutex);
        job->memo->stats.insertOrGet(
            std::make_pair(job->interval.start, job->interval.end),
            stats::IntervalStats(merged));
    }
    job->ticket->complete(std::move(merged));
}

// -- Warm-up (parallel fan-out, generation-immune) -----------------------

/**
 * One incremental warm-up: the not-yet-warmed (cpu, counter) pairs as
 * independent index-build units, plus optional interval-statistics and
 * task-list units. Unit claiming and completion mirror StatsJob.
 */
struct WarmupJob
{
    std::shared_ptr<detail::TicketState<WarmupStats>> ticket;
    std::shared_ptr<const trace::Trace> trace;
    std::shared_ptr<CounterIndexCache> cache;
    std::shared_ptr<StatsMemo> statsMemo;
    std::shared_ptr<SessionMemo> memo;
    std::shared_ptr<const filter::FilterSet> filters;
    std::vector<std::pair<CpuId, CounterId>> pairs;
    bool doStats = false;
    bool doTaskList = false;
    TimeInterval statsInterval;
    std::uint64_t filterGeneration = 0;
    WarmupStats stats;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> active{0};
    std::atomic<std::size_t> built{0}; ///< Indexes this job constructed.
    std::atomic<bool> abandoned{false};

    /** See StatsJob::pool / StatsJob::background. */
    base::ThreadPool *pool = nullptr;
    bool background = false;
};

void
drainWarmup(const std::shared_ptr<WarmupJob> &job)
{
    job->ticket->markRunning();
    const std::size_t pair_units = job->pairs.size();
    const std::size_t stats_unit = pair_units;
    const std::size_t list_unit = pair_units + (job->doStats ? 1 : 0);
    const std::size_t total = list_unit + (job->doTaskList ? 1 : 0);
    for (;;) {
        if (job->ticket->stale()) {
            job->abandoned.store(true, std::memory_order_relaxed);
            break;
        }
        if (yieldForInteractive(job, drainWarmup))
            return;
        std::size_t i = job->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= total)
            break;
        if (i < pair_units) {
            bool constructed = false;
            job->cache->get(job->pairs[i].first, job->pairs[i].second,
                            &constructed);
            // Per-call attribution: concurrent non-warm-up queries
            // building indexes never inflate this job's count.
            if (constructed)
                job->built.fetch_add(1, std::memory_order_relaxed);
        } else if (job->doStats && i == stats_unit) {
            // One serial scan (warm-up is already off the interactive
            // path; the pairs dominate the work).
            stats::IntervalStats merged;
            merged.interval = job->statsInterval;
            for (CpuId c = 0; c < job->trace->numCpus(); c++)
                merged.mergeFrom(stats::intervalStateChunk(
                    job->trace->cpu(c), job->statsInterval));
            const auto &instances = job->trace->taskInstances();
            merged.mergeFrom(stats::intervalTaskChunk(
                instances.data(), instances.data() + instances.size(),
                job->statsInterval));
            base::MutexLock lock(job->statsMemo->mutex);
            job->statsMemo->stats.insertOrGet(
                std::make_pair(job->statsInterval.start,
                               job->statsInterval.end),
                std::move(merged));
        } else {
            auto list =
                scanTaskList(*job->trace, *job->filters, *job->ticket);
            if (!list) {
                job->abandoned.store(true, std::memory_order_relaxed);
                break;
            }
            publishTaskList(*job->memo, job->filterGeneration, *list);
        }
    }
    if (job->active.fetch_sub(1, std::memory_order_acq_rel) != 1)
        return;
    if (job->abandoned.load(std::memory_order_relaxed) ||
        job->ticket->stale()) {
        // Cancelled mid-way: indexes already built stay cached (they
        // answer lazily), but nothing is recorded as warmed, so the
        // next warm-up revisits cheaply.
        job->ticket->completeCancelled();
        return;
    }
    WarmupStats stats = job->stats;
    stats.indexesBuilt = job->built.load(std::memory_order_relaxed);
    {
        base::MutexLock lock(job->statsMemo->mutex);
        job->statsMemo->warmedPairs.insert(job->pairs.begin(),
                                           job->pairs.end());
    }
    job->ticket->complete(stats);
}

// -- Anomaly scan (parallel fan-out) -------------------------------------

/**
 * One anomaly scan decomposed into the detector chunks of
 * stats::anomalyScanChunks(): per-CPU idle chunks, per-task-type
 * outlier chunks, per-(cpu, counter) burst chunks. Claiming, yielding
 * and completion mirror StatsJob; the last drainer merges the partials
 * in chunk order through stats::mergeAnomalyChunks(), so the ranked
 * list is bit-identical to the serial scanner at any worker count.
 */
struct AnomalyScanJob
{
    std::shared_ptr<detail::TicketState<std::vector<stats::Anomaly>>>
        ticket;
    std::shared_ptr<const trace::Trace> trace;
    std::shared_ptr<const filter::FilterSet> filters;
    stats::AnomalyScanOptions options;
    TimeInterval interval;
    std::vector<stats::AnomalyScanChunk> chunks;
    std::vector<stats::AnomalyChunkResult> partials;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> active{0};
    std::atomic<bool> abandoned{false};

    /** See StatsJob::pool / StatsJob::background. */
    base::ThreadPool *pool = nullptr;
    bool background = false;
};

void
drainAnomalies(const std::shared_ptr<AnomalyScanJob> &job)
{
    job->ticket->markRunning();
    const std::size_t total = job->chunks.size();
    for (;;) {
        if (job->ticket->stale()) {
            job->abandoned.store(true, std::memory_order_relaxed);
            break;
        }
        if (yieldForInteractive(job, drainAnomalies))
            return;
        std::size_t i = job->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= total)
            break;
        job->partials[i] = stats::runAnomalyChunk(
            *job->trace, job->chunks[i], job->options, job->interval,
            job->filters.get());
    }
    if (job->active.fetch_sub(1, std::memory_order_acq_rel) != 1)
        return;
    if (job->abandoned.load(std::memory_order_relaxed) ||
        job->ticket->stale()) {
        job->ticket->completeCancelled();
        return;
    }
    job->ticket->complete(stats::mergeAnomalyChunks(
        *job->trace, job->chunks, std::move(job->partials), job->options,
        job->interval));
}

// -- Pyramid build (parallel fan-out, generation-immune) -----------------

/**
 * One pyramid build: every CPU as an independent build unit, claimed
 * through the usual atomic cursor. A unit calls TracePyramids::get(),
 * which builds under the CPU's shard lock — builds for different CPUs
 * never contend, and a CPU whose pyramid a concurrent resolution-
 * bearing query already built is attributed to that query, not this
 * job (the @p built out-parameter is decided under the shard lock).
 */
struct PyramidJob
{
    std::shared_ptr<detail::TicketState<PyramidBuildStats>> ticket;
    std::shared_ptr<const trace::Trace> trace;
    std::shared_ptr<index::TracePyramids> pyramids;
    PyramidBuildStats stats;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> active{0};
    std::atomic<std::size_t> built{0}; ///< Pyramids this job constructed.
    std::atomic<bool> abandoned{false};

    /** See StatsJob::pool / StatsJob::background. */
    base::ThreadPool *pool = nullptr;
    bool background = false;
};

void
drainPyramids(const std::shared_ptr<PyramidJob> &job)
{
    job->ticket->markRunning();
    const std::size_t total = job->trace->numCpus();
    for (;;) {
        if (job->ticket->stale()) {
            job->abandoned.store(true, std::memory_order_relaxed);
            break;
        }
        if (yieldForInteractive(job, drainPyramids))
            return;
        std::size_t i = job->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= total)
            break;
        bool constructed = false;
        job->pyramids->get(static_cast<CpuId>(i), &constructed);
        if (constructed)
            job->built.fetch_add(1, std::memory_order_relaxed);
    }
    if (job->active.fetch_sub(1, std::memory_order_acq_rel) != 1)
        return;
    if (job->abandoned.load(std::memory_order_relaxed) ||
        job->ticket->stale()) {
        // Pyramids already built stay cached (queries answer from them
        // lazily); the next build revisits the remaining CPUs cheaply.
        job->ticket->completeCancelled();
        return;
    }
    PyramidBuildStats stats = job->stats;
    stats.cpusBuilt = job->built.load(std::memory_order_relaxed);
    job->ticket->complete(stats);
}

} // namespace

// -- Session::submit overloads -------------------------------------------

QueryTicket<stats::IntervalStats>
Session::submit(const IntervalStatsQuery &query)
{
    TimeInterval interval = query.context.interval.value_or(view());
    const TimeStamp granularity =
        pyramids_->granularityFor(query.context.resolution, interval);
    if (granularity > 0) {
        // Pyramid path: snap the interval outward to the granularity
        // and answer the *snapped* interval exactly from O(log n)
        // nodes per CPU — one tracked task, no fan-out, and no memo
        // (the memo holds exact answers for requested intervals only).
        TimeInterval snapped = pyramids_->snap(interval, granularity);
        const bool exact = snapped.start == interval.start &&
                           snapped.end == interval.end;
        auto state = newTicketState<stats::IntervalStats>(*domain_);
        auto trace = trace_;
        auto pyramids = pyramids_;
        base::TaskHandle handle;
        engine_->withPool([&](base::ThreadPool &pool) {
            handle = pool.submitTracked(
                [state, trace, pyramids, snapped, granularity, exact] {
                    state->markRunning();
                    if (state->stale()) {
                        state->completeCancelled();
                        return;
                    }
                    stats::IntervalStats out;
                    out.interval = snapped;
                    std::uint64_t nodes = 0;
                    auto range = pyramids->leafRange(snapped);
                    for (CpuId c = 0; c < trace->numCpus(); c++)
                        pyramids->get(c).occupancy(
                            range.first, range.second, out.timeInState,
                            nodes);
                    out.tasksStarted = pyramids->tasksStartedIn(snapped);
                    out.tasksOverlapping =
                        pyramids->tasksOverlapping(snapped);
                    out.resolution.exact = exact;
                    out.resolution.nodesTouched = nodes;
                    out.resolution.granularityNs = granularity;
                    state->complete(std::move(out));
                },
                toTaskPriority(query.context.priority));
        });
        {
            base::MutexLock lock(state->mutex);
            state->handle = handle;
        }
        return QueryTicket<stats::IntervalStats>(std::move(state));
    }
    {
        base::MutexLock lock(statsMemo_->mutex);
        if (const stats::IntervalStats *hit = statsMemo_->stats.tryGet(
                std::make_pair(interval.start, interval.end)))
            return completedTicket(*domain_, stats::IntervalStats(*hit));
    }
    auto state = newTicketState<stats::IntervalStats>(*domain_);
    auto job = std::make_shared<StatsJob>();
    job->ticket = state;
    job->trace = trace_;
    job->memo = statsMemo_;
    job->interval = interval;
    job->cpuChunks = trace_->numCpus();
    const std::size_t instances = trace_->taskInstances().size();
    const unsigned workers = engine_->workers();
    if (instances > 0) {
        // Enough task chunks to load every worker a few times over,
        // but no micro-chunks: the claim cursor should stay noise.
        job->taskChunkSize = std::max<std::size_t>(
            4096, instances / (static_cast<std::size_t>(workers) * 4));
        job->taskChunks =
            (instances + job->taskChunkSize - 1) / job->taskChunkSize;
    }
    const std::size_t total = job->cpuChunks + job->taskChunks;
    if (total == 0) {
        stats::IntervalStats empty;
        empty.interval = interval;
        {
            base::MutexLock lock(statsMemo_->mutex);
            statsMemo_->stats.insertOrGet(
                std::make_pair(interval.start, interval.end),
                stats::IntervalStats(empty));
        }
        return completedTicket(*domain_, std::move(empty));
    }
    job->partials.resize(total);
    job->background = query.context.priority == QueryPriority::Background;
    const std::size_t drainers =
        std::max<std::size_t>(1, std::min<std::size_t>(workers, total));
    job->active.store(drainers, std::memory_order_relaxed);
    base::TaskPriority priority = toTaskPriority(query.context.priority);
    engine_->withPool([&](base::ThreadPool &pool) {
        job->pool = &pool;
        for (std::size_t d = 0; d < drainers; d++)
            pool.submit([job] { drainStats(job); }, priority);
    });
    return QueryTicket<stats::IntervalStats>(std::move(state));
}

QueryTicket<std::vector<const trace::TaskInstance *>>
Session::submit(const TaskListQuery &query)
{
    using List = std::vector<const trace::TaskInstance *>;
    std::uint64_t generation;
    {
        base::MutexLock lock(memo_->mutex);
        generation = memo_->filterGeneration;
        if (const List *hit = memo_->taskList.tryGet(generation))
            return completedTicket(*domain_, List(*hit));
    }
    auto state = newTicketState<List>(*domain_);
    // The task list is view-independent: staleness tracks the filter
    // generation, so panning the view never cancels it.
    state->generation = domain_->filterGeneration();
    state->live = domain_->filterGenerationCell();
    auto trace = trace_;
    auto memo = memo_;
    auto filters = std::make_shared<const filter::FilterSet>(filters_);
    base::TaskHandle handle;
    engine_->withPool([&](base::ThreadPool &pool) {
        handle = pool.submitTracked(
            [state, trace, memo, filters, generation] {
                state->markRunning();
                auto list = scanTaskList(*trace, *filters, *state);
                if (!list) {
                    state->completeCancelled();
                    return;
                }
                publishTaskList(*memo, generation, *list);
                state->complete(std::move(*list));
            },
            toTaskPriority(query.context.priority));
    });
    {
        base::MutexLock lock(state->mutex);
        state->handle = handle;
    }
    return QueryTicket<List>(std::move(state));
}

QueryTicket<stats::Histogram>
Session::submit(const HistogramQuery &query)
{
    using List = std::vector<const trace::TaskInstance *>;
    if (query.context.interval) {
        const TimeStamp granularity = pyramids_->granularityFor(
            query.context.resolution, *query.context.interval);
        if (granularity > 0) {
            // Pyramid path: snap the interval and select the tasks
            // starting inside it by binary search on the start-sorted
            // task array — O(log n + matches) instead of a full list
            // scan. Bin counts are order-independent, so the result
            // equals the exact path's histogram of the snapped
            // interval bit for bit.
            TimeInterval snapped =
                pyramids_->snap(*query.context.interval, granularity);
            const bool exact =
                snapped.start == query.context.interval->start &&
                snapped.end == query.context.interval->end;
            auto state = newTicketState<stats::Histogram>(*domain_);
            state->generation = domain_->filterGeneration();
            state->live = domain_->filterGenerationCell();
            auto trace = trace_;
            auto pyramids = pyramids_;
            auto filters =
                std::make_shared<const filter::FilterSet>(filters_);
            std::uint32_t num_bins = query.numBins;
            base::TaskHandle handle;
            engine_->withPool([&](base::ThreadPool &pool) {
                handle = pool.submitTracked(
                    [state, trace, pyramids, filters, snapped,
                     granularity, exact, num_bins] {
                        state->markRunning();
                        if (state->stale()) {
                            state->completeCancelled();
                            return;
                        }
                        auto range = pyramids->taskStartRange(snapped);
                        const List &by_start = pyramids->tasksByStart();
                        std::vector<double> durations;
                        durations.reserve(range.second - range.first);
                        for (std::size_t i = range.first;
                             i < range.second; i++) {
                            const trace::TaskInstance *task = by_start[i];
                            if (filters->matches(*trace, *task))
                                durations.push_back(static_cast<double>(
                                    task->duration()));
                        }
                        if (state->stale()) {
                            state->completeCancelled();
                            return;
                        }
                        stats::Histogram h = stats::Histogram::fromValues(
                            durations, num_bins);
                        h.resolution.exact = exact;
                        h.resolution.granularityNs = granularity;
                        state->complete(std::move(h));
                    },
                    toTaskPriority(query.context.priority));
            });
            {
                base::MutexLock lock(state->mutex);
                state->handle = handle;
            }
            return QueryTicket<stats::Histogram>(std::move(state));
        }
    }
    auto state = newTicketState<stats::Histogram>(*domain_);
    // Like the task list it is built from, the histogram is
    // view-independent: staleness tracks the filter generation only.
    state->generation = domain_->filterGeneration();
    state->live = domain_->filterGenerationCell();
    std::uint64_t generation;
    std::shared_ptr<const List> cached;
    {
        base::MutexLock lock(memo_->mutex);
        generation = memo_->filterGeneration;
        if (const List *hit = memo_->taskList.tryGet(generation))
            cached = std::make_shared<const List>(*hit);
    }
    auto trace = trace_;
    auto memo = memo_;
    auto filters = std::make_shared<const filter::FilterSet>(filters_);
    std::uint32_t num_bins = query.numBins;
    std::optional<TimeInterval> restrict_to = query.context.interval;
    base::TaskHandle handle;
    engine_->withPool([&](base::ThreadPool &pool) {
        handle = pool.submitTracked(
            [state, trace, memo, filters, cached, generation, num_bins,
             restrict_to] {
                state->markRunning();
                if (state->stale()) {
                    state->completeCancelled();
                    return;
                }
                const List *tasks = cached.get();
                List computed;
                if (!tasks) {
                    auto list = scanTaskList(*trace, *filters, *state);
                    if (!list) {
                        state->completeCancelled();
                        return;
                    }
                    computed = std::move(*list);
                    // The scan is the expensive half; share it with
                    // later tasks()/histogram() calls of the same
                    // generation (the published list is unrestricted;
                    // the interval only narrows the binned values).
                    publishTaskList(*memo, generation, computed);
                    tasks = &computed;
                }
                std::vector<double> durations;
                durations.reserve(tasks->size());
                for (const trace::TaskInstance *task : *tasks) {
                    if (restrict_to &&
                        !restrict_to->contains(task->interval.start))
                        continue;
                    durations.push_back(
                        static_cast<double>(task->duration()));
                }
                if (state->stale()) {
                    state->completeCancelled();
                    return;
                }
                state->complete(
                    stats::Histogram::fromValues(durations, num_bins));
            },
            toTaskPriority(query.context.priority));
    });
    {
        base::MutexLock lock(state->mutex);
        state->handle = handle;
    }
    return QueryTicket<stats::Histogram>(std::move(state));
}

QueryTicket<index::MinMax>
Session::submit(const CounterExtremaQuery &query)
{
    auto state = newTicketState<index::MinMax>(*domain_);
    auto cache = counterIndexes_;
    TimeInterval interval = query.context.interval.value_or(view());
    const TimeStamp granularity =
        pyramids_->granularityFor(query.context.resolution, interval);
    CpuId cpu = query.cpu;
    CounterId counter = query.counter;
    if (granularity > 0) {
        // Pyramid path: the extrema of the snapped interval from the
        // per-node counter aggregates — O(log n) nodes instead of the
        // index's per-sample range scan. An out-of-range CPU yields
        // the same invalid MinMax a counter with no samples does.
        TimeInterval snapped = pyramids_->snap(interval, granularity);
        auto pyramids = pyramids_;
        base::TaskHandle handle;
        engine_->withPool([&](base::ThreadPool &pool) {
            handle = pool.submitTracked(
                [state, pyramids, cpu, counter, snapped] {
                    state->markRunning();
                    if (state->stale()) {
                        state->completeCancelled();
                        return;
                    }
                    index::MinMax out;
                    if (const index::SummaryPyramid *p =
                            pyramids->getOrNull(cpu)) {
                        std::uint64_t nodes = 0;
                        auto range = pyramids->leafRange(snapped);
                        index::SummaryPyramid::CounterAggregate agg =
                            p->counterAggregate(counter, range.first,
                                                range.second, nodes);
                        if (agg.count > 0) {
                            out.valid = true;
                            out.min = agg.min;
                            out.max = agg.max;
                        }
                    }
                    state->complete(out);
                },
                toTaskPriority(query.context.priority));
        });
        {
            base::MutexLock lock(state->mutex);
            state->handle = handle;
        }
        return QueryTicket<index::MinMax>(std::move(state));
    }
    base::TaskHandle handle;
    engine_->withPool([&](base::ThreadPool &pool) {
        handle = pool.submitTracked(
            [state, cache, cpu, counter, interval] {
                state->markRunning();
                if (state->stale()) {
                    state->completeCancelled();
                    return;
                }
                state->complete(cache->query(cpu, counter, interval));
            },
            toTaskPriority(query.context.priority));
    });
    {
        base::MutexLock lock(state->mutex);
        state->handle = handle;
    }
    return QueryTicket<index::MinMax>(std::move(state));
}

QueryTicket<Session::WarmupStats>
Session::submit(const WarmupQuery &query)
{
    auto state = newTicketState<WarmupStats>(*domain_);
    // Warm-up products are view-independent (indexes) or keyed by
    // interval / filter generation, so generation bumps don't invalidate
    // them: warm-up cancels only explicitly.
    state->live = nullptr;
    auto job = std::make_shared<WarmupJob>();
    job->ticket = state;
    job->trace = trace_;
    job->cache = counterIndexes_;
    job->statsMemo = statsMemo_;
    job->memo = memo_;
    job->filters = std::make_shared<const filter::FilterSet>(filters_);
    job->statsInterval = view();
    job->stats.workers = engine_->workers();

    const WarmupPolicy &policy = query.policy;
    std::size_t skipped = 0;
    // The two memos lock sequentially (never nested): warmed pairs and
    // the stats memo live in the shared StatsMemo, the filter
    // generation and task list in the per-context SessionMemo.
    {
        base::MutexLock lock(statsMemo_->mutex);
        if (policy.counterIndexes) {
            for (CpuId c = 0; c < trace_->numCpus(); c++) {
                for (CounterId id : trace_->cpu(c).counterIds()) {
                    if (!policy.counters.empty() &&
                        std::find(policy.counters.begin(),
                                  policy.counters.end(),
                                  id) == policy.counters.end())
                        continue;
                    if (statsMemo_->warmedPairs.count({c, id})) {
                        skipped++;
                        continue;
                    }
                    job->pairs.emplace_back(c, id);
                }
            }
        }
        // Already-memoized stats / task-list entries need no unit; the
        // lookups count hits, keeping warm-up observable like the old
        // eager revisit did.
        if (policy.intervalStats)
            job->doStats =
                statsMemo_->stats.tryGet(std::make_pair(
                    job->statsInterval.start,
                    job->statsInterval.end)) == nullptr;
    }
    {
        base::MutexLock lock(memo_->mutex);
        job->filterGeneration = memo_->filterGeneration;
        if (policy.taskList)
            job->doTaskList =
                memo_->taskList.tryGet(job->filterGeneration) == nullptr;
    }
    job->stats.indexesVisited = job->pairs.size();
    job->stats.indexesSkipped = skipped;

    const std::size_t total = job->pairs.size() +
                              (job->doStats ? 1 : 0) +
                              (job->doTaskList ? 1 : 0);
    if (total == 0)
        return completedTicket(*domain_, job->stats);
    job->background = query.context.priority == QueryPriority::Background;
    const std::size_t drainers = std::max<std::size_t>(
        1, std::min<std::size_t>(engine_->workers(), total));
    job->active.store(drainers, std::memory_order_relaxed);
    base::TaskPriority priority = toTaskPriority(query.context.priority);
    engine_->withPool([&](base::ThreadPool &pool) {
        job->pool = &pool;
        for (std::size_t d = 0; d < drainers; d++)
            pool.submit([job] { drainWarmup(job); }, priority);
    });
    return QueryTicket<WarmupStats>(std::move(state));
}

QueryTicket<PyramidBuildStats>
Session::submit(const PyramidBuildQuery &query)
{
    auto state = newTicketState<PyramidBuildStats>(*domain_);
    // Pyramids are trace-keyed, never view- or filter-keyed, so
    // generation bumps don't invalidate a build: explicit cancel only.
    state->live = nullptr;
    auto job = std::make_shared<PyramidJob>();
    job->ticket = state;
    job->trace = trace_;
    job->pyramids = pyramids_;
    job->stats.cpusVisited = trace_->numCpus();
    job->stats.workers = engine_->workers();
    const std::size_t total = trace_->numCpus();
    if (total == 0)
        return completedTicket(*domain_, job->stats);
    job->background = query.context.priority == QueryPriority::Background;
    const std::size_t drainers = std::max<std::size_t>(
        1, std::min<std::size_t>(engine_->workers(), total));
    job->active.store(drainers, std::memory_order_relaxed);
    base::TaskPriority priority = toTaskPriority(query.context.priority);
    engine_->withPool([&](base::ThreadPool &pool) {
        job->pool = &pool;
        for (std::size_t d = 0; d < drainers; d++)
            pool.submit([job] { drainPyramids(job); }, priority);
    });
    return QueryTicket<PyramidBuildStats>(std::move(state));
}

QueryTicket<TraceLoadResult>
Session::submit(const TraceLoadQuery &query)
{
    AFTERMATH_ASSERT(query.bytes != nullptr || !query.path.empty(),
                     "trace load query needs a source");
    auto state = newTicketState<TraceLoadResult>(*domain_);
    // A load's product is handed back to the driving thread, never
    // published into shared caches, so view/filter/trace mutations
    // cannot make it stale: generation-immune, explicit cancel only.
    state->live = nullptr;
    trace::ReadOptions options;
    options.workers =
        query.workers == 0 ? engine_->workers() : query.workers;
    // Bridge ticket.cancel() into the reader's cooperative poll (the
    // token copies share one flag).
    options.cancel = state->cancel;
    auto bytes = query.bytes;
    std::string path = query.path;
    base::TaskHandle handle;
    engine_->withPool([&](base::ThreadPool &pool) {
        // The load's serial frame scan can occupy a worker for the
        // whole file; drain queued interactive tasks at the reader's
        // poll boundaries so even a 1-worker engine stays responsive.
        // The pool outlives the load task (it runs on that pool, and
        // the pool drains before destruction), so the raw pointer in
        // the yield hook stays valid.
        base::ThreadPool *pool_ptr = &pool;
        options.yield = [pool_ptr] {
            while (pool_ptr->hasHighPriorityWork() &&
                   pool_ptr->runOneHighPriorityTask()) {
            }
        };
        handle = pool.submitTracked(
            [state, bytes, path, options] {
                state->markRunning();
                if (state->stale()) {
                    state->completeCancelled();
                    return;
                }
                // The reader spins up its own decode pool: a pool task
                // must not parallelFor() on its own pool, and a
                // 1-worker engine would serialize the decode otherwise.
                trace::ReadResult read =
                    bytes ? trace::readTrace(*bytes, options)
                          : trace::readTraceFile(path, options);
                if (read.cancelled) {
                    state->completeCancelled();
                    return;
                }
                TraceLoadResult result;
                result.ok = read.ok;
                result.error = std::move(read.error);
                result.encoding = read.encoding;
                result.bytesRead = read.bytesRead;
                if (read.ok)
                    result.trace = std::make_shared<const trace::Trace>(
                        std::move(read.trace));
                state->complete(std::move(result));
            },
            toTaskPriority(query.context.priority));
    });
    {
        base::MutexLock lock(state->mutex);
        state->handle = handle;
    }
    return QueryTicket<TraceLoadResult>(std::move(state));
}

QueryTicket<TimelineRenderResult>
Session::submit(const TimelineRenderQuery &query)
{
    AFTERMATH_ASSERT(query.width > 0 && query.height > 0,
                     "render query needs positive dimensions");
    auto state = newTicketState<TimelineRenderResult>(*domain_);
    auto trace = trace_;
    // Snapshot the session's filters on the heap: the async render must
    // not point into the (mutable) session object.
    std::shared_ptr<const filter::FilterSet> filters;
    render::TimelineConfig config = query.config;
    if (!config.taskFilter && filters_.size() > 0) {
        filters = std::make_shared<const filter::FilterSet>(filters_);
        config.taskFilter = filters.get();
    }
    if (config.view.empty() && !view_.empty())
        config.view = view_;
    // A non-Exact context.resolution overrides the config's own knob,
    // so async and remote callers can request pyramid-backed rendering
    // without touching the render config.
    if (query.context.resolution.kind != Resolution::Kind::Exact)
        config.resolution = query.context.resolution;
    auto pyramids = pyramids_;
    config.pyramids = pyramids.get();
    std::uint32_t width = query.width;
    std::uint32_t height = query.height;
    auto renderers = rendererPool_;
    base::TaskHandle handle;
    engine_->withPool([&](base::ThreadPool &pool) {
        handle = pool.submitTracked(
            [state, trace, renderers, filters, pyramids, config, width,
             height] {
                state->markRunning();
                if (state->stale()) {
                    state->completeCancelled();
                    return;
                }
                TimelineRenderResult result;
                result.fb = render::Framebuffer(width, height);
                // Check a pooled renderer out instead of constructing:
                // repeated async renders reuse the palette and memo
                // caches a fresh renderer would rebuild per query.
                RendererPool::Lease lease = renderers->checkout(trace);
                lease->render(config, result.fb);
                result.stats = lease->stats();
                state->complete(std::move(result));
            },
            toTaskPriority(query.context.priority));
    });
    {
        base::MutexLock lock(state->mutex);
        state->handle = handle;
    }
    return QueryTicket<TimelineRenderResult>(std::move(state));
}

QueryTicket<std::vector<stats::Anomaly>>
Session::submit(const AnomalyScanQuery &query)
{
    TimeInterval interval = query.context.interval.value_or(view());
    // View-dependent by default generation: a view, filter or trace
    // mutation makes a queued or running scan stale (polled at chunk
    // boundaries) — the findings describe a window the user just left.
    auto state = newTicketState<std::vector<stats::Anomaly>>(*domain_);
    auto job = std::make_shared<AnomalyScanJob>();
    job->ticket = state;
    job->trace = trace_;
    job->filters = std::make_shared<const filter::FilterSet>(filters_);
    job->options = query.options;
    job->interval = interval;
    if (interval.empty() || query.options.numIntervals == 0)
        return completedTicket(*domain_, std::vector<stats::Anomaly>());
    job->chunks = stats::anomalyScanChunks(*trace_);
    const std::size_t total = job->chunks.size();
    if (total == 0)
        return completedTicket(*domain_, std::vector<stats::Anomaly>());
    job->partials.resize(total);
    job->background = query.context.priority == QueryPriority::Background;
    const std::size_t drainers = std::max<std::size_t>(
        1, std::min<std::size_t>(engine_->workers(), total));
    job->active.store(drainers, std::memory_order_relaxed);
    base::TaskPriority priority = toTaskPriority(query.context.priority);
    engine_->withPool([&](base::ThreadPool &pool) {
        job->pool = &pool;
        for (std::size_t d = 0; d < drainers; d++)
            pool.submit([job] { drainAnomalies(job); }, priority);
    });
    return QueryTicket<std::vector<stats::Anomaly>>(std::move(state));
}

} // namespace session
} // namespace aftermath
