/**
 * @file
 * Fig 16: distribution of the main computation task durations in k-means.
 *
 * After filtering out auxiliary tasks (reduction, propagation, input),
 * the histogram of distance-task durations shows several peaks although
 * all blocks have identical point counts — the anomaly whose cause
 * (branch mispredictions) sections V and Fig 19 track down.
 */

#include <cstdio>

#include "common.h"

using namespace aftermath;

int
main()
{
    bench::banner("Fig 16",
                  "k-means: duration histogram of computation tasks");

    runtime::RunResult result = bench::runKmeans();
    if (!result.ok) {
        std::fprintf(stderr, "simulation failed: %s\n",
                     result.error.c_str());
        return 1;
    }
    const trace::Trace &tr = result.trace;

    // The paper's filter: only the main computation tasks, installed on
    // the session so statistics and export share it.
    Session session = Session::view(tr);
    filter::FilterSet f;
    f.add(std::make_shared<filter::TaskTypeFilter>(
        std::unordered_set<TaskTypeId>{workloads::kKmeansDistanceType}));
    session.setFilters(f);
    stats::Histogram h = session.histogram(30);

    std::printf("\nduration_mcycles, fraction_pct\n");
    for (std::uint32_t i = 0; i < h.numBins(); i++) {
        std::printf("%.2f, %.2f\n", h.binCenter(i) / 1e6,
                    100.0 * h.fraction(i));
    }

    auto peaks = h.peaks();
    double spread = h.rangeMax() / h.rangeMin();

    std::printf("\n");
    bench::row("computation tasks",
               strFormat("%llu",
                         static_cast<unsigned long long>(h.total())));
    bench::row("duration range",
               strFormat("%s .. %s (paper: 6.5M .. 12.5M)",
                         humanCycles(static_cast<std::uint64_t>(
                             h.rangeMin())).c_str(),
                         humanCycles(static_cast<std::uint64_t>(
                             h.rangeMax())).c_str()));
    bench::row("distinct peaks",
               strFormat("%zu (paper: multiple peaks)", peaks.size()));
    bool shape = peaks.size() >= 2 && spread > 1.3;
    bench::row("multi-modal non-uniform durations",
               shape ? "yes" : "NO");
    return shape ? 0 : 1;
}
