/**
 * @file
 * Machine topology: CPUs, NUMA nodes and inter-node distances.
 *
 * Aftermath relates trace information to the machine's topology (paper
 * abstract); the topology travels inside the trace file so analyses know
 * which CPU belongs to which NUMA node and how far nodes are from each
 * other.
 */

#ifndef AFTERMATH_TRACE_TOPOLOGY_H
#define AFTERMATH_TRACE_TOPOLOGY_H

#include <cstdint>
#include <vector>

#include "base/types.h"

namespace aftermath {
namespace trace {

/**
 * The NUMA topology of the traced machine.
 *
 * Distances follow the ACPI SLIT convention: local distance is 10 and
 * remote distances are larger; they scale the simulator's memory access
 * costs and feed the NUMA heatmap's local/remote classification.
 */
class MachineTopology
{
  public:
    /** An empty topology (no CPUs); populate with setUniform()/custom. */
    MachineTopology() = default;

    /**
     * Build a symmetric topology: @p num_nodes nodes of
     * @p cpus_per_node CPUs each, all remote distances equal.
     *
     * @param num_nodes Number of NUMA nodes (>= 1).
     * @param cpus_per_node CPUs per node (>= 1).
     * @param remote_distance SLIT distance between distinct nodes.
     */
    static MachineTopology uniform(std::uint32_t num_nodes,
                                   std::uint32_t cpus_per_node,
                                   std::uint32_t remote_distance = 20);

    /**
     * Build a topology with explicit CPU->node mapping and distances.
     *
     * @param cpu_to_node Node id of each CPU.
     * @param num_nodes Number of nodes; every entry of @p cpu_to_node
     *        must be smaller.
     * @param distances Row-major num_nodes x num_nodes SLIT matrix.
     */
    static MachineTopology custom(std::vector<NodeId> cpu_to_node,
                                  std::uint32_t num_nodes,
                                  std::vector<std::uint32_t> distances);

    /** Number of logical CPUs. */
    std::uint32_t numCpus() const
    {
        return static_cast<std::uint32_t>(cpuToNode_.size());
    }

    /** Number of NUMA nodes. */
    std::uint32_t numNodes() const { return numNodes_; }

    /** NUMA node of CPU @p cpu. */
    NodeId nodeOfCpu(CpuId cpu) const;

    /** CPUs belonging to node @p node. */
    const std::vector<CpuId> &cpusOfNode(NodeId node) const;

    /** SLIT distance between two nodes (10 == local). */
    std::uint32_t distance(NodeId from, NodeId to) const;

    /** True if @p from and @p to are the same node. */
    bool
    isLocal(NodeId from, NodeId to) const
    {
        return from == to;
    }

    /** True if the topology has at least one CPU. */
    bool valid() const { return !cpuToNode_.empty(); }

  private:
    void buildNodeCpuLists();

    std::vector<NodeId> cpuToNode_;
    std::vector<std::vector<CpuId>> nodeCpus_;
    std::vector<std::uint32_t> distances_; // Row-major numNodes_^2.
    std::uint32_t numNodes_ = 0;
};

} // namespace trace
} // namespace aftermath

#endif // AFTERMATH_TRACE_TOPOLOGY_H
