#include "session/session.h"

#include <algorithm>

#include "base/logging.h"
#include "metrics/counter_utils.h"
#include "metrics/generators.h"

namespace aftermath {
namespace session {

namespace {

/** Counter attribution over an explicit task list (paper section V). */
std::vector<metrics::TaskCounterIncrease>
collectIncreases(const trace::Trace &trace, CounterId counter,
                 const std::vector<const trace::TaskInstance *> &tasks)
{
    std::vector<metrics::TaskCounterIncrease> out;
    for (const trace::TaskInstance *task : tasks) {
        const trace::CpuTimeline *tl = trace.cpuOrNull(task->cpu);
        if (!tl)
            continue;
        auto before =
            metrics::counterValueAt(*tl, counter, task->interval.start);
        auto after =
            metrics::counterValueAt(*tl, counter, task->interval.end);
        if (!before || !after)
            continue;
        metrics::TaskCounterIncrease row;
        row.task = task->id;
        row.type = task->type;
        row.cpu = task->cpu;
        row.duration = task->duration();
        row.increase = *after - *before;
        out.push_back(row);
    }
    return out;
}

/** Task durations as doubles, the histogram observation vector. */
std::vector<double>
durationsOf(const std::vector<const trace::TaskInstance *> &tasks)
{
    std::vector<double> out;
    out.reserve(tasks.size());
    for (const trace::TaskInstance *task : tasks)
        out.push_back(static_cast<double>(task->duration()));
    return out;
}

} // namespace

Session::Session(trace::Trace trace)
    : trace_(std::make_shared<const trace::Trace>(std::move(trace)))
{
    rebindTrace();
}

Session::Session(std::shared_ptr<const trace::Trace> trace)
    : trace_(std::move(trace))
{
    AFTERMATH_ASSERT(trace_ != nullptr, "session over a null trace");
    rebindTrace();
}

Session
Session::view(const trace::Trace &trace)
{
    // Aliasing empty-owner shared_ptr: no ownership, pointer only.
    return Session(std::shared_ptr<const trace::Trace>(
        std::shared_ptr<const trace::Trace>(), &trace));
}

void
Session::rebindTrace()
{
    counterIndexes_ = std::make_unique<CounterIndexCache>(*trace_);
    // The renderer scans the task-type table at construction; defer it
    // until the first render so query-only sessions (in particular the
    // throwaway ones behind the deprecated free functions) never pay it.
    renderer_.reset();
    statsCache_.clear();
    taskListCache_.clear();
}

render::TimelineRenderer &
Session::renderer()
{
    if (!renderer_)
        renderer_ = std::make_unique<render::TimelineRenderer>(*trace_);
    return *renderer_;
}

void
Session::setTrace(trace::Trace trace)
{
    setTrace(std::make_shared<const trace::Trace>(std::move(trace)));
}

void
Session::setTrace(std::shared_ptr<const trace::Trace> trace)
{
    AFTERMATH_ASSERT(trace != nullptr, "session over a null trace");
    // Keep the index accounting cumulative across the swap: the cache
    // object dies with the old trace, its counters roll into the base.
    counterIndexBase_.hits += counterIndexes_->counters().hits;
    counterIndexBase_.builds += counterIndexes_->counters().builds;
    trace_ = std::move(trace);
    rebindTrace();
}

void
Session::setFilters(filter::FilterSet filters)
{
    filters_ = std::move(filters);
    filterGeneration_++;
    // Only filter-dependent caches go; indexes and interval statistics
    // are filter-independent and survive.
    taskListCache_.clear();
}

void
Session::clearFilters()
{
    setFilters(filter::FilterSet());
}

TimeInterval
Session::view() const
{
    return view_.empty() ? trace_->span() : view_;
}

void
Session::setConcurrency(const Concurrency &concurrency)
{
    if (concurrency.workers != concurrency_.workers)
        pool_.reset(); // Rebuilt lazily with the new worker count.
    concurrency_ = concurrency;
}

base::ThreadPool *
Session::pool()
{
    unsigned workers = concurrency_.workers == 0
        ? base::ThreadPool::defaultWorkers()
        : concurrency_.workers;
    if (workers <= 1)
        return nullptr;
    if (!pool_)
        pool_ = std::make_unique<base::ThreadPool>(workers);
    return pool_.get();
}

Session::WarmupStats
Session::warmup(const WarmupPolicy &policy)
{
    WarmupStats stats;

    if (policy.counterIndexes) {
        // Enumerate the sampled (cpu, counter) pairs up front; the
        // builds are independent and go through the per-CPU-sharded
        // index cache, so they run concurrently without contending.
        std::vector<std::pair<CpuId, CounterId>> pairs;
        for (CpuId c = 0; c < trace_->numCpus(); c++) {
            for (CounterId id : trace_->cpu(c).counterIds()) {
                if (policy.counters.empty() ||
                    std::find(policy.counters.begin(),
                              policy.counters.end(),
                              id) != policy.counters.end())
                    pairs.emplace_back(c, id);
            }
        }
        std::uint64_t builds_before = counterIndexes_->counters().builds;
        base::ThreadPool *workers = pool();
        if (workers) {
            stats.workers = workers->numWorkers();
            workers->parallelFor(pairs.size(), [&](std::size_t i) {
                counterIndexes_->get(pairs[i].first, pairs[i].second);
            });
        } else {
            for (const auto &[cpu, counter] : pairs)
                counterIndexes_->get(cpu, counter);
        }
        stats.indexesVisited = pairs.size();
        stats.indexesBuilt = static_cast<std::size_t>(
            counterIndexes_->counters().builds - builds_before);
    }

    // The memoized single-entry structures are cheap relative to the
    // index sweep; they warm serially on the calling thread (MemoCache
    // is not thread-safe, and there is nothing to overlap).
    if (policy.intervalStats)
        intervalStats(view());
    if (policy.taskList)
        tasks();

    // Workers park only between the pool's construction and here; the
    // session does not keep idle threads alive after the warm-up (a
    // group of many-variant sessions would otherwise park
    // variants x workers threads for the program's lifetime).
    pool_.reset();
    return stats;
}

Session::WarmupStats
Session::warmup()
{
    return warmup(WarmupPolicy());
}

void
Session::setStatsCacheCapacity(std::size_t capacity)
{
    statsCache_.setCapacity(capacity);
}

const stats::IntervalStats &
Session::intervalStats(const TimeInterval &interval)
{
    return statsCache_.getOrBuild(
        std::make_pair(interval.start, interval.end),
        [&] { return computeIntervalStatsUncached(interval); });
}

const stats::IntervalStats &
Session::intervalStats()
{
    return intervalStats(view());
}

stats::IntervalStats
Session::computeIntervalStatsUncached(const TimeInterval &interval) const
{
    stats::IntervalStats stats;
    stats.interval = interval;

    for (CpuId c = 0; c < trace_->numCpus(); c++) {
        const auto &states = trace_->cpu(c).states();
        trace::SliceRange slice = trace_->cpu(c).stateSlice(interval);
        for (std::size_t i = slice.first; i < slice.last; i++) {
            const trace::StateEvent &ev = states[i];
            stats.timeInState[ev.state] +=
                ev.interval.overlapDuration(interval);
        }
    }

    for (const trace::TaskInstance &task : trace_->taskInstances()) {
        if (task.interval.overlaps(interval)) {
            stats.tasksOverlapping++;
            if (interval.contains(task.interval.start))
                stats.tasksStarted++;
        }
    }
    return stats;
}

stats::Histogram
Session::histogram(std::uint32_t num_bins)
{
    return stats::Histogram::fromValues(durationsOf(tasks()), num_bins);
}

stats::Histogram
Session::histogramMatching(const filter::TaskFilter &filter,
                           std::uint32_t num_bins) const
{
    return stats::Histogram::fromValues(durationsOf(tasksMatching(filter)),
                                        num_bins);
}

index::MinMax
Session::counterExtrema(CpuId cpu, CounterId counter,
                        const TimeInterval &interval)
{
    return counterIndexes_->query(cpu, counter, interval);
}

index::MinMax
Session::counterExtrema(CpuId cpu, CounterId counter)
{
    return counterExtrema(cpu, counter, view());
}

const index::CounterIndex &
Session::counterIndex(CpuId cpu, CounterId counter)
{
    return counterIndexes_->get(cpu, counter);
}

std::vector<metrics::TaskCounterIncrease>
Session::taskCounterIncreases(CounterId counter)
{
    return collectIncreases(*trace_, counter, tasks());
}

std::vector<metrics::TaskCounterIncrease>
Session::taskCounterIncreasesMatching(CounterId counter,
                                      const filter::TaskFilter &filter) const
{
    return collectIncreases(*trace_, counter, tasksMatching(filter));
}

const std::vector<const trace::TaskInstance *> &
Session::tasks()
{
    return taskListCache_.getOrBuild(
        filterGeneration_, [&] { return tasksMatching(filters_); });
}

std::vector<const trace::TaskInstance *>
Session::tasks(const TaskPredicate &pred)
{
    std::vector<const trace::TaskInstance *> out;
    for (const trace::TaskInstance *task : tasks()) {
        if (pred(*task))
            out.push_back(task);
    }
    return out;
}

std::vector<const trace::TaskInstance *>
Session::tasksMatching(const filter::TaskFilter &filter) const
{
    std::vector<const trace::TaskInstance *> out;
    for (const trace::TaskInstance &task : trace_->taskInstances()) {
        if (filter.matches(*trace_, task))
            out.push_back(&task);
    }
    return out;
}

metrics::DerivedCounter
Session::stateOccupancy(std::uint32_t state,
                        std::uint32_t num_intervals) const
{
    return metrics::stateOccupancy(*trace_, state, num_intervals);
}

metrics::DerivedCounter
Session::averageTaskDuration(std::uint32_t num_intervals) const
{
    return metrics::averageTaskDuration(*trace_, num_intervals);
}

metrics::DerivedCounter
Session::aggregateCounter(CounterId counter,
                          std::uint32_t num_intervals) const
{
    return metrics::aggregateCounter(*trace_, counter, num_intervals);
}

SessionCacheStats
Session::cacheStats() const
{
    SessionCacheStats out;
    out.counterIndex.hits =
        counterIndexBase_.hits + counterIndexes_->counters().hits;
    out.counterIndex.builds =
        counterIndexBase_.builds + counterIndexes_->counters().builds;
    out.intervalStats = statsCache_.counters();
    out.taskList = taskListCache_.counters();
    return out;
}

} // namespace session
} // namespace aftermath
