/**
 * @file
 * Positive control of the compile-fail harness: structurally identical
 * to the fail cases but correctly locked, so it must compile. If this
 * case ever fails, the harness (includes, flags) is broken — not the
 * analysis.
 */

#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace {

struct Counter
{
    aftermath::base::Mutex mutex;
    int value AM_GUARDED_BY(mutex) = 0;

    void
    bump()
    {
        aftermath::base::MutexLock lock(mutex);
        value++;
    }

    int
    read() AM_REQUIRES(mutex)
    {
        return value;
    }

    int
    lockedRead()
    {
        aftermath::base::MutexLock lock(mutex);
        return read();
    }
};

} // namespace

int
aftermathTsaPassCase()
{
    Counter counter;
    counter.bump();
    return counter.lockedRead();
}
