#include "render/layout.h"

#include <algorithm>

#include "base/logging.h"

namespace aftermath {
namespace render {

TimelineLayout::TimelineLayout(const TimeInterval &view, std::uint32_t width,
                               std::uint32_t height, std::uint32_t num_cpus)
    : view_(view), width_(width), height_(height), numCpus_(num_cpus)
{
    AFTERMATH_ASSERT(width > 0 && height > 0, "layout area must be positive");
    AFTERMATH_ASSERT(num_cpus > 0, "layout needs at least one cpu lane");
    AFTERMATH_ASSERT(!view.empty(), "layout view interval must be non-empty");
}

TimeInterval
TimelineLayout::pixelInterval(std::uint32_t x) const
{
    // Integer split of the view into `width` near-equal pieces; pixel
    // intervals tile the view exactly (no gaps, no overlaps) so that the
    // predominant-state resolution never double-counts time.
    TimeStamp dur = view_.duration();
    TimeStamp start = view_.start +
        static_cast<TimeStamp>((static_cast<unsigned __int128>(dur) * x) /
                               width_);
    TimeStamp end = view_.start +
        static_cast<TimeStamp>(
            (static_cast<unsigned __int128>(dur) * (x + 1)) / width_);
    return {start, std::max(end, start)};
}

std::uint32_t
TimelineLayout::timeToPixel(TimeStamp t) const
{
    if (t <= view_.start)
        return 0;
    if (t >= view_.end)
        return width_ - 1;
    unsigned __int128 off = t - view_.start;
    std::uint32_t x = static_cast<std::uint32_t>(
        (off * width_) / view_.duration());
    return std::min(x, width_ - 1);
}

double
TimelineLayout::cyclesPerPixel() const
{
    return static_cast<double>(view_.duration()) /
           static_cast<double>(width_);
}

std::uint32_t
TimelineLayout::laneTop(CpuId cpu) const
{
    AFTERMATH_ASSERT(cpu < numCpus_, "cpu %u outside layout", cpu);
    return (height_ * cpu) / numCpus_;
}

std::uint32_t
TimelineLayout::laneHeight() const
{
    return std::max<std::uint32_t>(height_ / numCpus_, 1);
}

} // namespace render
} // namespace aftermath
