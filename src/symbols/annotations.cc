#include "symbols/annotations.h"

#include <fstream>
#include <sstream>

#include "base/string_util.h"

namespace aftermath {
namespace symbols {

namespace {

constexpr const char *kHeader = "aftermath-annotations v1";

std::string
escapeField(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '\t': out += "\\t"; break;
          case '\n': out += "\\n"; break;
          default: out += c;
        }
    }
    return out;
}

std::string
unescapeField(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); i++) {
        if (s[i] == '\\' && i + 1 < s.size()) {
            i++;
            switch (s[i]) {
              case '\\': out += '\\'; break;
              case 't': out += '\t'; break;
              case 'n': out += '\n'; break;
              default: out += s[i];
            }
        } else {
            out += s[i];
        }
    }
    return out;
}

} // namespace

void
AnnotationStore::add(const Annotation &annotation)
{
    annotations_.push_back(annotation);
}

std::vector<const Annotation *>
AnnotationStore::overlapping(const TimeInterval &interval) const
{
    std::vector<const Annotation *> out;
    for (const Annotation &a : annotations_) {
        if (a.interval.overlaps(interval))
            out.push_back(&a);
    }
    return out;
}

std::string
AnnotationStore::serialize() const
{
    std::ostringstream os;
    os << kHeader << '\n';
    for (const Annotation &a : annotations_) {
        os << a.cpu << '\t' << a.interval.start << '\t' << a.interval.end
           << '\t' << escapeField(a.author) << '\t' << escapeField(a.text)
           << '\n';
    }
    return os.str();
}

bool
AnnotationStore::deserialize(const std::string &text, std::string &error)
{
    std::istringstream is(text);
    std::string line;
    if (!std::getline(is, line) || strTrim(line) != kHeader) {
        error = "missing annotation file header";
        return false;
    }

    std::vector<Annotation> loaded;
    std::size_t line_no = 1;
    while (std::getline(is, line)) {
        line_no++;
        if (strTrim(line).empty())
            continue;
        std::vector<std::string> fields = strSplit(line, '\t');
        if (fields.size() != 5) {
            error = strFormat("line %zu: expected 5 fields, got %zu",
                              line_no, fields.size());
            return false;
        }
        Annotation a;
        try {
            a.cpu = static_cast<CpuId>(std::stoul(fields[0]));
            a.interval.start = std::stoull(fields[1]);
            a.interval.end = std::stoull(fields[2]);
        } catch (const std::exception &) {
            error = strFormat("line %zu: malformed numeric field", line_no);
            return false;
        }
        a.author = unescapeField(fields[3]);
        a.text = unescapeField(fields[4]);
        loaded.push_back(std::move(a));
    }
    annotations_ = std::move(loaded);
    return true;
}

bool
AnnotationStore::save(const std::string &path, std::string &error) const
{
    std::ofstream os(path);
    if (!os) {
        error = "cannot open " + path + " for writing";
        return false;
    }
    os << serialize();
    if (!os) {
        error = "write to " + path + " failed";
        return false;
    }
    return true;
}

bool
AnnotationStore::load(const std::string &path, std::string &error)
{
    std::ifstream is(path);
    if (!is) {
        error = "cannot open " + path;
        return false;
    }
    std::ostringstream buffer;
    buffer << is.rdbuf();
    return deserialize(buffer.str(), error);
}

} // namespace symbols
} // namespace aftermath
