#include "session/compare.h"

#include <algorithm>

#include "base/logging.h"

namespace aftermath {
namespace session {
namespace compare {

IntervalStatsDelta
intervalStatsDelta(const stats::IntervalStats &a,
                   const stats::IntervalStats &b)
{
    IntervalStatsDelta delta;
    delta.intervalA = a.interval;
    delta.intervalB = b.interval;
    for (const auto &[state, time] : a.timeInState)
        delta.timeInState[state] -= static_cast<std::int64_t>(time);
    for (const auto &[state, time] : b.timeInState)
        delta.timeInState[state] += static_cast<std::int64_t>(time);
    delta.tasksOverlapping =
        static_cast<std::int64_t>(b.tasksOverlapping) -
        static_cast<std::int64_t>(a.tasksOverlapping);
    delta.tasksStarted = static_cast<std::int64_t>(b.tasksStarted) -
                         static_cast<std::int64_t>(a.tasksStarted);
    TimeStamp total_b = b.totalTime();
    delta.totalTimeRatio = total_b == 0
        ? 0.0
        : static_cast<double>(a.totalTime()) /
              static_cast<double>(total_b);
    return delta;
}

std::int64_t
PairedHistograms::countDelta(std::size_t a, std::size_t b,
                             std::uint32_t bin) const
{
    return static_cast<std::int64_t>(variants.at(b).count(bin)) -
           static_cast<std::int64_t>(variants.at(a).count(bin));
}

PairedHistograms
pairedHistograms(const std::vector<std::vector<double>> &observations,
                 std::uint32_t num_bins)
{
    PairedHistograms out;

    // Shared range: the extrema across every variant's observations, so
    // every histogram gets identical bin edges.
    bool any = false;
    for (const std::vector<double> &values : observations) {
        for (double v : values) {
            if (!any) {
                out.rangeMin = out.rangeMax = v;
                any = true;
            } else {
                out.rangeMin = std::min(out.rangeMin, v);
                out.rangeMax = std::max(out.rangeMax, v);
            }
        }
    }
    // Degenerate ranges (no observations, or a single distinct value)
    // widen exactly like Histogram::fromValues does, so the advertised
    // range matches the variants' actual bin edges.
    if (out.rangeMax <= out.rangeMin)
        out.rangeMax = out.rangeMin + 1.0;

    out.variants.reserve(observations.size());
    for (const std::vector<double> &values : observations)
        out.variants.push_back(stats::Histogram::fromValues(
            values, num_bins, out.rangeMin, out.rangeMax));
    return out;
}

bool
regressionRankedBefore(const RegressionFinding &a,
                       const RegressionFinding &b)
{
    if (a.severity != b.severity)
        return a.severity > b.severity;
    if (a.kind != b.kind)
        return a.kind < b.kind;
    if (a.taskType != b.taskType)
        return a.taskType < b.taskType;
    return stats::anomalyRankedBefore(a.anomaly, b.anomaly);
}

} // namespace compare
} // namespace session
} // namespace aftermath
