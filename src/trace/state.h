/**
 * @file
 * Worker states and their descriptions.
 *
 * The default timeline mode shows which state each worker thread traverses
 * over time (paper section II-B). States are identified by small integers;
 * a trace carries a description frame per state id. The ids below are the
 * well-known states emitted by the bundled runtime simulator — analysis
 * code never assumes a trace is limited to them.
 */

#ifndef AFTERMATH_TRACE_STATE_H
#define AFTERMATH_TRACE_STATE_H

#include <cstdint>
#include <string>
#include <vector>

namespace aftermath {
namespace trace {

/** State ids emitted by the bundled OpenStream-like runtime. */
enum class CoreState : std::uint32_t {
    TaskExec = 0,       ///< Executing a task's work function.
    TaskCreation = 1,   ///< Creating child tasks.
    Idle = 2,           ///< Idle, engaging in work stealing.
    Broadcast = 3,      ///< Propagating data to multiple consumers.
    Reduction = 4,      ///< Participating in a reduction.
    Synchronization = 5,///< Waiting on a synchronization construct.
    RuntimeInit = 6,    ///< Runtime system startup/teardown bookkeeping.
};

/** Number of well-known core states. */
inline constexpr std::uint32_t kNumCoreStates = 7;

/** Human-readable description of one state id. */
struct StateDescription
{
    std::uint32_t id = 0;
    std::string name;
};

/** Descriptions for all well-known CoreState values. */
inline std::vector<StateDescription>
coreStateDescriptions()
{
    return {
        {static_cast<std::uint32_t>(CoreState::TaskExec), "task_exec"},
        {static_cast<std::uint32_t>(CoreState::TaskCreation),
         "task_creation"},
        {static_cast<std::uint32_t>(CoreState::Idle), "idle"},
        {static_cast<std::uint32_t>(CoreState::Broadcast), "broadcast"},
        {static_cast<std::uint32_t>(CoreState::Reduction), "reduction"},
        {static_cast<std::uint32_t>(CoreState::Synchronization),
         "synchronization"},
        {static_cast<std::uint32_t>(CoreState::RuntimeInit), "runtime_init"},
    };
}

} // namespace trace
} // namespace aftermath

#endif // AFTERMATH_TRACE_STATE_H
