/**
 * @file
 * Serialization of traces to the on-disk frame format.
 *
 * TraceWriter exposes an event-level API so a tracing runtime can emit
 * frames as execution proceeds, in any global interleaving, as long as
 * each CPU's events are appended in timestamp order (the only ordering
 * the format requires, paper section VI-A). writeTrace() serializes a
 * complete in-memory Trace through the same path.
 */

#ifndef AFTERMATH_TRACE_WRITER_H
#define AFTERMATH_TRACE_WRITER_H

#include <cstdint>
#include <string>
#include <vector>

#include "base/buffer.h"
#include "base/types.h"
#include "trace/format.h"
#include "trace/trace.h"

namespace aftermath {
namespace trace {

/** Streams trace frames into a byte buffer in Raw or Compact encoding. */
class TraceWriter
{
  public:
    /**
     * Start a trace stream.
     *
     * @param encoding Raw (fixed-width) or Compact (varint + delta).
     * @param cpu_freq_hz Clock frequency recorded in the header.
     */
    explicit TraceWriter(Encoding encoding = Encoding::Raw,
                         std::uint64_t cpu_freq_hz = 2'000'000'000);

    /** Emit the machine topology (must precede per-CPU event frames). */
    void topology(const MachineTopology &topo);

    /** Emit a state description frame. */
    void stateDescription(const StateDescription &desc);

    /** Emit a counter description frame. */
    void counterDescription(const CounterDescription &desc);

    /** Emit a task type frame. */
    void taskType(const TaskType &type);

    /** Emit a state event on @p cpu. */
    void stateEvent(CpuId cpu, const StateEvent &ev);

    /** Emit a counter sample on @p cpu. */
    void counterSample(CpuId cpu, CounterId counter,
                       const CounterSample &sample);

    /** Emit a discrete event on @p cpu. */
    void discreteEvent(CpuId cpu, const DiscreteEvent &ev);

    /** Emit a communication event on @p cpu. */
    void commEvent(CpuId cpu, const CommEvent &ev);

    /** Emit a task instance frame. */
    void taskInstance(const TaskInstance &instance);

    /** Emit a memory region frame. */
    void memRegion(const MemRegion &region);

    /** Emit a memory access frame. */
    void memAccess(const MemAccess &access);

    /** Terminate the stream and return the encoded bytes. */
    std::vector<std::uint8_t> finish();

    /** Bytes emitted so far (excluding the final end frame). */
    std::size_t sizeBytes() const { return buffer_.size(); }

  private:
    void frameHeader(FrameType type);
    void writeTime(DeltaClass cls, CpuId cpu, TimeStamp time);
    void writeValue(std::uint64_t v);
    void writeValue32(std::uint32_t v);
    std::uint64_t deltaKey(DeltaClass cls, CpuId cpu) const;

    ByteWriter buffer_;
    Encoding encoding_;
    bool finished_ = false;
    // Previous timestamp per (delta class, cpu), compact encoding only.
    std::vector<std::vector<TimeStamp>> lastTime_;
};

/** Serialize a finalized in-memory trace. */
std::vector<std::uint8_t> writeTrace(const Trace &trace,
                                     Encoding encoding = Encoding::Raw);

/**
 * Serialize a finalized trace to a file.
 *
 * @return true on success; on failure @p error describes the problem.
 */
bool writeTraceFile(const Trace &trace, const std::string &path,
                    Encoding encoding, std::string &error);

} // namespace trace
} // namespace aftermath

#endif // AFTERMATH_TRACE_WRITER_H
